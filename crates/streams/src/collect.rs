//! Collecting a physical stream back into history tables.
//!
//! The collector stamps every message with CEDR time and maintains the
//! tritemporal history table of Section 4 (valid time doubling as occurrence
//! time in the merged unitemporal regime), so the paper's canonicalisation,
//! equivalence and sync-point machinery applies verbatim to runtime outputs.

use crate::delta::OutputDelta;
use crate::message::{Message, Stamped};
use cedr_temporal::{
    ChainKey, HistoryRow, HistoryTable, Interval, TimePoint, UniTemporalRow, UniTemporalTable,
};
use std::collections::HashMap;

/// Aggregate statistics of a collected stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    pub inserts: usize,
    pub retractions: usize,
    pub full_removals: usize,
    pub ctis: usize,
    /// Total output size in the Figure-8 sense: inserts + retractions.
    pub data_messages: usize,
}

/// Folds messages into a history table, statistics, and an incremental
/// **delta log** — the consumable changelog cursored by subscriptions.
#[derive(Clone, Debug, Default)]
pub struct Collector {
    history: HistoryTable,
    stamped: Vec<Stamped>,
    /// Append-only changelog mirroring `stamped`: one [`OutputDelta`] per
    /// ingested message, in arrival order. Events are `Arc`-shared with
    /// the stamped tape, so the log costs no payload copies. Sink nodes
    /// feed it through [`Collector::push`] in both the serial sweep and
    /// the sharded scheduler, which is what makes subscription drains
    /// bit-identical to `stamped()` at every thread count.
    deltas: Vec<OutputDelta>,
    stats: StreamStats,
    /// Current lifetime per chain, for retraction chaining.
    current_end: HashMap<u64, TimePoint>,
    clock: crate::clock::CedrClock,
    max_cti: Option<TimePoint>,
}

impl Collector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one message.
    pub fn push(&mut self, msg: Message) {
        let cs = self.clock.stamp();
        match &msg {
            Message::Insert(e) => {
                self.stats.inserts += 1;
                self.stats.data_messages += 1;
                self.current_end.insert(e.id.0, e.interval.end);
                self.history.push(HistoryRow {
                    id: e.id,
                    valid: e.interval,
                    occurrence: e.interval,
                    cedr: Interval::from(cs),
                    k: ChainKey(e.id.0),
                    payload: e.payload.clone(),
                });
                self.deltas.push(OutputDelta::Insert {
                    cedr_time: cs,
                    event: e.clone(),
                });
            }
            Message::Retract(r) => {
                self.stats.retractions += 1;
                self.stats.data_messages += 1;
                if r.is_full_removal() {
                    self.stats.full_removals += 1;
                }
                self.current_end.insert(r.event.id.0, r.new_end);
                let shortened = Interval::new(r.event.interval.start, r.new_end);
                self.history.push(HistoryRow {
                    id: r.event.id,
                    valid: shortened,
                    occurrence: shortened,
                    cedr: Interval::from(cs),
                    k: ChainKey(r.event.id.0),
                    payload: r.event.payload.clone(),
                });
                self.deltas.push(OutputDelta::Retract {
                    cedr_time: cs,
                    event: r.event.clone(),
                    new_end: r.new_end,
                });
            }
            Message::Cti(t) => {
                self.stats.ctis += 1;
                self.max_cti = Some(self.max_cti.map_or(*t, |m| TimePoint::max_of(m, *t)));
                self.deltas.push(OutputDelta::Cti {
                    cedr_time: cs,
                    guarantee: *t,
                });
            }
        }
        self.stamped.push(Stamped::new(cs, msg));
    }

    /// Ingest a whole stream.
    pub fn push_all(&mut self, msgs: impl IntoIterator<Item = Message>) {
        for m in msgs {
            self.push(m);
        }
    }

    /// Ingest every message of a batch. Events stay shared with the batch
    /// (`Arc` clones); only history-table rows copy payloads out.
    pub fn absorb_batch(&mut self, batch: &crate::batch::MessageBatch) {
        for m in batch {
            self.push(m.clone());
        }
    }

    /// The tritemporal history table accumulated so far.
    pub fn history(&self) -> &HistoryTable {
        &self.history
    }

    /// The net logical content: the reduced table as a unitemporal table
    /// (each chain collapsed to its final lifetime, removals dropped).
    pub fn net_table(&self) -> UniTemporalTable {
        self.history
            .reduce()
            .rows
            .into_iter()
            .map(|r| UniTemporalRow::new(r.id, r.occurrence, r.payload))
            .collect()
    }

    /// All stamped messages in arrival order.
    pub fn stamped(&self) -> &[Stamped] {
        &self.stamped
    }

    /// The append-only output changelog, in arrival order — one
    /// [`OutputDelta`] per message ever pushed, mirroring
    /// [`Collector::stamped`] entry for entry. Subscriptions cursor into
    /// this slice; see [`Collector::deltas_from`].
    pub fn delta_log(&self) -> &[OutputDelta] {
        &self.deltas
    }

    /// The changelog suffix starting at `cursor` (clamped to the log
    /// length): everything appended since a consumer last read up to
    /// `cursor`. Incremental consumption is `deltas_from(cursor)` + advance
    /// the cursor by the returned length — no state is re-read and nothing
    /// is copied.
    pub fn deltas_from(&self, cursor: usize) -> &[OutputDelta] {
        &self.deltas[cursor.min(self.deltas.len())..]
    }

    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The highest CTI observed (output progress guarantee).
    pub fn max_cti(&self) -> Option<TimePoint> {
        self.max_cti
    }

    /// Decompose into plain checkpointable parts. `current_end` is sorted
    /// by chain key so the decomposition (and any image built from it) is
    /// deterministic regardless of hash-map iteration order.
    pub fn to_parts(&self) -> CollectorParts {
        let mut current_end: Vec<(u64, TimePoint)> =
            self.current_end.iter().map(|(&k, &v)| (k, v)).collect();
        current_end.sort_unstable_by_key(|&(k, _)| k);
        CollectorParts {
            history: self.history.clone(),
            stamped: self.stamped.clone(),
            deltas: self.deltas.clone(),
            stats: self.stats.clone(),
            current_end,
            clock_ticks: self.clock.ticks(),
            max_cti: self.max_cti,
        }
    }

    /// Rebuild a collector from checkpointed parts. Inverse of
    /// [`Collector::to_parts`].
    pub fn from_parts(parts: CollectorParts) -> Collector {
        Collector {
            history: parts.history,
            stamped: parts.stamped,
            deltas: parts.deltas,
            stats: parts.stats,
            current_end: parts.current_end.into_iter().collect(),
            clock: crate::clock::CedrClock::from_ticks(parts.clock_ticks),
            max_cti: parts.max_cti,
        }
    }
}

/// A [`Collector`] decomposed into plain data for checkpointing: every
/// private field surfaced as an owned, deterministic value (maps as sorted
/// vectors, the clock as its raw tick counter).
#[derive(Clone, Debug, PartialEq)]
pub struct CollectorParts {
    pub history: HistoryTable,
    pub stamped: Vec<Stamped>,
    pub deltas: Vec<OutputDelta>,
    pub stats: StreamStats,
    /// `(chain key, current lifetime end)`, sorted by chain key.
    pub current_end: Vec<(u64, TimePoint)>,
    pub clock_ticks: u64,
    pub max_cti: Option<TimePoint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Retraction;
    use crate::source::StreamBuilder;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::{EquivalenceOptions, Event, EventId, Payload};

    #[test]
    fn collects_inserts_and_retractions_into_chains() {
        let mut b = StreamBuilder::new();
        let e = b.insert(iv(1, 10), Payload::empty());
        b.retract(e, t(4));
        let mut c = Collector::new();
        c.push_all(b.build_ordered(None, true));
        assert_eq!(c.stats().inserts, 1);
        assert_eq!(c.stats().retractions, 1);
        assert_eq!(c.stats().ctis, 1);
        let net = c.net_table();
        assert_eq!(net.len(), 1);
        assert_eq!(net.rows[0].interval, iv(1, 4));
    }

    #[test]
    fn full_removals_vanish_from_net_content() {
        let mut c = Collector::new();
        let e = Event::primitive(EventId(9), iv(2, 8), Payload::empty());
        c.push(Message::insert_event(e.clone()));
        c.push(Message::Retract(Retraction::new(e, t(2))));
        assert_eq!(c.stats().full_removals, 1);
        assert!(c.net_table().is_empty());
    }

    #[test]
    fn scrambled_and_ordered_streams_are_logically_equivalent() {
        use crate::disorder::{scramble, DisorderConfig};
        let mut b = StreamBuilder::new();
        for i in 0..40 {
            let e = b.insert(iv(i, i + 10), Payload::empty());
            if i % 4 == 0 {
                b.retract(e, t(i + 5));
            }
        }
        let ordered = b.build_ordered(Some(cedr_temporal::time::dur(4)), true);
        let scrambled = scramble(&ordered, &DisorderConfig::heavy(13, 25, 6));

        let mut c1 = Collector::new();
        c1.push_all(ordered);
        let mut c2 = Collector::new();
        c2.push_all(scrambled);

        assert!(cedr_temporal::logically_equivalent(
            c1.history(),
            c2.history(),
            EquivalenceOptions::definition1(),
        ));
    }

    #[test]
    fn delta_log_mirrors_stamped_entry_for_entry() {
        let mut b = StreamBuilder::new();
        let e = b.insert(iv(1, 10), Payload::empty());
        b.retract(e, t(4));
        let mut c = Collector::new();
        c.push_all(b.build_ordered(None, true));
        assert_eq!(c.delta_log().len(), c.stamped().len());
        for (d, s) in c.delta_log().iter().zip(c.stamped()) {
            assert_eq!(d.cedr_time(), s.cedr_time);
            assert_eq!(d.sync(), s.message.sync());
            assert_eq!(d.is_data(), s.message.is_data());
        }
        // Cursors: a suffix read picks up exactly what a full read holds.
        let mid = c.delta_log().len() / 2;
        assert_eq!(c.deltas_from(mid), &c.delta_log()[mid..]);
        assert!(c.deltas_from(c.delta_log().len() + 10).is_empty());
    }

    #[test]
    fn cedr_time_stamps_are_sequential() {
        let mut c = Collector::new();
        c.push(Message::Cti(t(1)));
        c.push(Message::Cti(t(2)));
        assert_eq!(c.stamped()[0].cedr_time, t(0));
        assert_eq!(c.stamped()[1].cedr_time, t(1));
        assert_eq!(c.max_cti(), Some(t(2)));
    }
}
