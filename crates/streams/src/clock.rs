//! Clocks.
//!
//! Section 2: "valid time and occurrence time are assigned by the same
//! logical clock of the event provider"; CEDR time is "the clock of the
//! stream processing server". The reproduction substitutes a deterministic
//! arrival counter for the server's wall clock (see DESIGN.md): CEDR time
//! only needs to order arrivals and anchor sync points, which a counter does
//! while keeping every run replayable.

use cedr_temporal::{Duration, TimePoint};

/// An event provider's logical clock: monotone, manually advanced.
#[derive(Clone, Debug)]
pub struct LogicalClock {
    now: TimePoint,
}

impl LogicalClock {
    pub fn starting_at(now: TimePoint) -> Self {
        LogicalClock { now }
    }

    pub fn new() -> Self {
        Self::starting_at(TimePoint::ZERO)
    }

    /// Current provider time.
    pub fn now(&self) -> TimePoint {
        self.now
    }

    /// Advance by `d`, returning the new time.
    pub fn advance(&mut self, d: Duration) -> TimePoint {
        self.now += d;
        self.now
    }

    /// Jump forward to `t`; panics on attempts to move backwards.
    pub fn advance_to(&mut self, t: TimePoint) -> TimePoint {
        assert!(t >= self.now, "logical clocks are monotone");
        self.now = t;
        self.now
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

/// The CEDR server clock: one tick per delivered message.
#[derive(Clone, Debug, Default)]
pub struct CedrClock {
    ticks: u64,
}

impl CedrClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamp the next arrival, advancing the clock.
    pub fn stamp(&mut self) -> TimePoint {
        let t = TimePoint::new(self.ticks);
        self.ticks += 1;
        t
    }

    /// The time the next arrival would be stamped with.
    pub fn peek(&self) -> TimePoint {
        TimePoint::new(self.ticks)
    }

    /// Arrivals stamped so far — the raw counter, for checkpointing.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Rebuild a clock from a checkpointed tick counter.
    pub fn from_ticks(ticks: u64) -> Self {
        CedrClock { ticks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::time::{dur, t};

    #[test]
    fn logical_clock_is_monotone() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), t(0));
        assert_eq!(c.advance(dur(5)), t(5));
        assert_eq!(c.advance_to(t(9)), t(9));
    }

    #[test]
    #[should_panic]
    fn logical_clock_rejects_backwards_jumps() {
        let mut c = LogicalClock::starting_at(t(10));
        c.advance_to(t(5));
    }

    #[test]
    fn cedr_clock_counts_arrivals() {
        let mut c = CedrClock::new();
        assert_eq!(c.peek(), t(0));
        assert_eq!(c.stamp(), t(0));
        assert_eq!(c.stamp(), t(1));
        assert_eq!(c.peek(), t(2));
    }
}
