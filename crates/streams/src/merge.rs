//! Deterministic merging of message batches.
//!
//! Parallel ingestion produces independent per-provider (or per-shard)
//! batches that must be combined into one stream without introducing
//! nondeterminism. [`merge_by_sync`] is the canonical rule: a stable
//! k-way merge keyed by **`(sync, input index, position)`** — messages are
//! interleaved by their Figure-6 `Sync` value, ties broken first by which
//! input batch they came from and then by their position within it. The
//! result is a single batch whose content is a pure function of the
//! inputs, so any number of workers staging the same batches always feeds
//! downstream operators identically. Events stay `Arc`-shared throughout:
//! merging is refcount bumps, never payload copies.
//!
//! The complementary *splitting* helpers live on
//! [`MessageBatch`] (`split_at`, `chunks`);
//! splitting a batch and re-merging the pieces with this rule round-trips
//! to the original batch, because each piece preserves relative order and
//! sync values are non-decreasing within an ordered stream.

use crate::batch::MessageBatch;
use crate::message::Message;

/// Stable k-way merge of independent batches by `(sync, input index,
/// position)`. Per-batch relative order is always preserved; across
/// batches, the message with the smaller `Sync` goes first, earlier inputs
/// winning ties. `O(total · k)` — the fan-in `k` is small (providers or
/// shards, not messages).
pub fn merge_by_sync(batches: &[MessageBatch]) -> MessageBatch {
    let total = batches.iter().map(MessageBatch::len).sum();
    let mut out = MessageBatch::with_capacity(total);
    let mut idx = vec![0usize; batches.len()];
    loop {
        let mut best: Option<(usize, &Message)> = None;
        for (b, batch) in batches.iter().enumerate() {
            let Some(m) = batch.as_slice().get(idx[b]) else {
                continue;
            };
            let better = match best {
                None => true,
                // Strictly smaller sync wins; ties keep the earlier input.
                Some((_, bm)) => m.sync() < bm.sync(),
            };
            if better {
                best = Some((b, m));
            }
        }
        match best {
            Some((b, m)) => {
                out.push(m.clone());
                idx[b] += 1;
            }
            None => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::Payload;

    fn ins(id: u64, vs: u64) -> Message {
        Message::insert(id, iv(vs, vs + 5), Payload::empty())
    }

    #[test]
    fn merges_by_sync_with_stable_ties() {
        let a = MessageBatch::from(vec![ins(1, 0), ins(2, 4), ins(3, 9)]);
        let b = MessageBatch::from(vec![ins(10, 0), ins(11, 4), ins(12, 6)]);
        let merged = merge_by_sync(&[a, b]);
        let ids: Vec<u64> = merged
            .iter()
            .filter_map(|m| m.as_insert().map(|e| e.id.0))
            .collect();
        // Ties at 0 and 4 resolve to input 0 first.
        assert_eq!(ids, vec![1, 10, 2, 11, 12, 3]);
    }

    #[test]
    fn merge_handles_ctis_and_empty_inputs() {
        let a = MessageBatch::from(vec![ins(1, 2), Message::Cti(t(5))]);
        let b = MessageBatch::new();
        let c = MessageBatch::from(vec![ins(2, 3)]);
        let merged = merge_by_sync(&[a, b, c]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.as_slice()[2].as_cti(), Some(t(5)));
    }

    #[test]
    fn split_then_merge_round_trips_an_ordered_batch() {
        let msgs: Vec<Message> = (0..20).map(|i| ins(i, i)).collect();
        let batch = MessageBatch::from(msgs);
        let chunks = batch.chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(merge_by_sync(&chunks), batch);
        let (lo, hi) = batch.split_at(7);
        assert_eq!(lo.len(), 7);
        assert_eq!(hi.len(), 13);
        assert_eq!(merge_by_sync(&[lo, hi]), batch);
    }

    #[test]
    fn merge_is_deterministic() {
        let a = MessageBatch::from(vec![ins(1, 3), ins(2, 3)]);
        let b = MessageBatch::from(vec![ins(3, 3)]);
        assert_eq!(
            merge_by_sync(&[a.clone(), b.clone()]),
            merge_by_sync(&[a, b])
        );
    }
}
