//! # cedr-streams
//!
//! The physical stream substrate of the CEDR reproduction: the messages that
//! flow between operators (inserts, retractions, CTIs/occurrence-time
//! guarantees), provider and server clocks, the unreliable-delivery
//! simulator that stands in for the paper's "unreliable (w.r.t. delivery
//! order) network connections", and collectors that fold a physical stream
//! back into the history tables of `cedr-temporal` so the paper's
//! equivalence machinery applies to runtime outputs.

pub mod batch;
pub mod clock;
pub mod collect;
pub mod delta;
pub mod disorder;
pub mod merge;
pub mod message;
pub mod resequence;
pub mod source;

pub use batch::{ColumnarView, MessageBatch, MessageKind};
pub use clock::{CedrClock, LogicalClock};
pub use collect::{Collector, CollectorParts, StreamStats};
pub use delta::OutputDelta;
pub use disorder::{disorder_profile, scramble, DisorderConfig};
pub use merge::merge_by_sync;
pub use message::{Message, Retraction, Stamped};
pub use resequence::{LaneParts, Resequencer, ResequencerParts, RoundStatus};
pub use source::StreamBuilder;

/// Convenience prelude.
pub mod prelude {
    pub use crate::batch::MessageBatch;
    pub use crate::clock::{CedrClock, LogicalClock};
    pub use crate::collect::{Collector, StreamStats};
    pub use crate::delta::OutputDelta;
    pub use crate::disorder::{disorder_profile, scramble, DisorderConfig};
    pub use crate::merge::merge_by_sync;
    pub use crate::message::{Message, Retraction, Stamped};
    pub use crate::source::StreamBuilder;
}
