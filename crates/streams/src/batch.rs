//! Message batches: the unit of work of the batch-at-a-time runtime.
//!
//! A [`MessageBatch`] is an ordered run of [`Message`]s from one logical
//! stream. Because messages carry their events behind `Arc`, a batch can be
//! handed to any number of consumers by cloning it — the events are shared,
//! never deep-copied. Batching exists purely at the physical layer: a batch
//! has no temporal meaning beyond the concatenation of its messages, so any
//! stream may be cut into batches at arbitrary points without changing the
//! logical (net) content of what flows through an operator graph.

use crate::message::Message;
use cedr_temporal::TimePoint;
use serde::{Deserialize, Serialize};

/// An ordered run of messages, cheap to clone (events are `Arc`-shared).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageBatch {
    msgs: Vec<Message>,
}

impl MessageBatch {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        MessageBatch {
            msgs: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, msg: Message) {
        self.msgs.push(msg);
    }

    pub fn extend(&mut self, msgs: impl IntoIterator<Item = Message>) {
        self.msgs.extend(msgs);
    }

    /// Append a sealing `CTI(t)` guarantee.
    pub fn push_cti(&mut self, t: TimePoint) {
        self.msgs.push(Message::Cti(t));
    }

    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Number of data (non-CTI) messages.
    pub fn data_messages(&self) -> usize {
        self.msgs.iter().filter(|m| m.is_data()).count()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Message> {
        self.msgs.iter()
    }

    pub fn as_slice(&self) -> &[Message] {
        &self.msgs
    }

    /// Highest `Sync` value in the batch, if any.
    pub fn max_sync(&self) -> Option<TimePoint> {
        self.msgs.iter().map(|m| m.sync()).max()
    }

    pub fn clear(&mut self) {
        self.msgs.clear();
    }

    pub fn into_messages(self) -> Vec<Message> {
        self.msgs
    }

    /// Split into `[0, mid)` and `[mid, len)` without copying payloads
    /// (messages are `Arc`-shared clones). `mid` is clamped to the length.
    pub fn split_at(&self, mid: usize) -> (MessageBatch, MessageBatch) {
        let mid = mid.min(self.msgs.len());
        (
            MessageBatch::from(self.msgs[..mid].to_vec()),
            MessageBatch::from(self.msgs[mid..].to_vec()),
        )
    }

    /// Cut into `n` contiguous, near-equal chunks (lengths differ by at
    /// most one; earlier chunks are larger). Chunks preserve order, so
    /// concatenating them always reconstructs the batch; re-merging them
    /// with [`merge_by_sync`](crate::merge::merge_by_sync) does too **for
    /// sync-ordered batches** (a disordered tape — e.g. one produced by
    /// `disorder::scramble` — would be re-sorted by the merge rule).
    /// Returns fewer than `n` chunks when the batch is shorter than `n`.
    pub fn chunks(&self, n: usize) -> Vec<MessageBatch> {
        let n = n.max(1).min(self.msgs.len().max(1));
        let base = self.msgs.len() / n;
        let rem = self.msgs.len() % n;
        let mut out = Vec::with_capacity(n);
        let mut at = 0;
        for i in 0..n {
            let len = base + usize::from(i < rem);
            if len == 0 {
                break;
            }
            out.push(MessageBatch::from(self.msgs[at..at + len].to_vec()));
            at += len;
        }
        out
    }

    /// Cut into contiguous chunks of at most `size` messages (the last
    /// chunk may be shorter). Like [`MessageBatch::chunks`] but sized by
    /// *chunk length* instead of chunk count — the natural knob when the
    /// chunk is a delivery run whose length is the amortisation factor
    /// (e.g. a bench comparing per-message `chunks_of(1)` against
    /// batch-native `chunks_of(256)` ingestion of the same tape).
    pub fn chunks_of(&self, size: usize) -> Vec<MessageBatch> {
        let size = size.max(1);
        self.msgs
            .chunks(size)
            .map(|c| MessageBatch::from(c.to_vec()))
            .collect()
    }
}

impl From<Vec<Message>> for MessageBatch {
    fn from(msgs: Vec<Message>) -> Self {
        MessageBatch { msgs }
    }
}

impl FromIterator<Message> for MessageBatch {
    fn from_iter<I: IntoIterator<Item = Message>>(iter: I) -> Self {
        MessageBatch {
            msgs: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for MessageBatch {
    type Item = Message;
    type IntoIter = std::vec::IntoIter<Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.into_iter()
    }
}

impl<'a> IntoIterator for &'a MessageBatch {
    type Item = &'a Message;
    type IntoIter = std::slice::Iter<'a, Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::Payload;

    #[test]
    fn batch_accumulates_and_counts() {
        let mut b = MessageBatch::new();
        b.push(Message::insert(1, iv(0, 5), Payload::empty()));
        b.push(Message::insert(2, iv(3, 8), Payload::empty()));
        b.push_cti(t(3));
        assert_eq!(b.len(), 3);
        assert_eq!(b.data_messages(), 2);
        assert_eq!(b.max_sync(), Some(t(3)));
    }

    #[test]
    fn chunks_of_slices_by_length_and_reassembles() {
        let mut b = MessageBatch::new();
        for i in 0..10u64 {
            b.push(Message::insert(i, iv(i, i + 1), Payload::empty()));
        }
        let chunks = b.chunks_of(4);
        assert_eq!(
            chunks.iter().map(MessageBatch::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        let glued: MessageBatch = chunks.into_iter().flatten().collect();
        assert_eq!(glued, b);
        assert_eq!(b.chunks_of(1).len(), 10, "per-message slicing");
        assert_eq!(b.chunks_of(64).len(), 1, "oversized chunk = whole batch");
    }

    #[test]
    fn batch_round_trips_through_vec() {
        let msgs = vec![Message::Cti(t(1)), Message::Cti(t(2))];
        let b = MessageBatch::from(msgs.clone());
        assert_eq!(b.clone().into_messages(), msgs);
        assert_eq!(b.iter().count(), 2);
    }
}
