//! Message batches: the unit of work of the batch-at-a-time runtime.
//!
//! A [`MessageBatch`] is an ordered run of [`Message`]s from one logical
//! stream. Because messages carry their events behind `Arc`, a batch can be
//! handed to any number of consumers by cloning it — the events are shared,
//! never deep-copied. Batching exists purely at the physical layer: a batch
//! has no temporal meaning beyond the concatenation of its messages, so any
//! stream may be cut into batches at arbitrary points without changing the
//! logical (net) content of what flows through an operator graph.

use crate::message::Message;
use cedr_temporal::{PayloadColumns, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Discriminant of a message in a [`ColumnarView`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageKind {
    Insert,
    Retract,
    Cti,
}

/// A struct-of-arrays projection of a run of messages: the hot per-message
/// fields laid out as contiguous columns, so a tight loop (the fused
/// stateless pipeline, a merge, a stamp pass) can scan kinds and time
/// points without chasing one `Arc<Event>` per message. Column `i`
/// describes message `i` of the run it was built over:
///
/// * `kinds[i]` — insert / retract / CTI;
/// * `vs[i]` — the event's `Vs` (for a CTI: its `t`);
/// * `ve[i]` — the event's **original** `Ve` (for a retract this is the
///   pre-retraction end, not `new_end`; for a CTI: its `t`);
/// * `sync[i]` — the Figure-6 `Sync` value (`Vs` / `new_end` / `t`);
/// * `ids[i]` — the raw event id (0 for a CTI).
///
/// The view is a *projection*: payloads and lineage stay behind the
/// original `Arc`s, reachable through the message slice the view was
/// built from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnarView {
    pub kinds: Vec<MessageKind>,
    pub vs: Vec<TimePoint>,
    pub ve: Vec<TimePoint>,
    pub sync: Vec<TimePoint>,
    pub ids: Vec<u64>,
}

impl ColumnarView {
    /// Materialise the view over a run of messages (one linear pass).
    pub fn over(msgs: &[Message]) -> ColumnarView {
        let n = msgs.len();
        let mut view = ColumnarView {
            kinds: Vec::with_capacity(n),
            vs: Vec::with_capacity(n),
            ve: Vec::with_capacity(n),
            sync: Vec::with_capacity(n),
            ids: Vec::with_capacity(n),
        };
        for m in msgs {
            match m {
                Message::Insert(e) => {
                    view.kinds.push(MessageKind::Insert);
                    view.vs.push(e.interval.start);
                    view.ve.push(e.interval.end);
                    view.sync.push(e.interval.start);
                    view.ids.push(e.id.0);
                }
                Message::Retract(r) => {
                    view.kinds.push(MessageKind::Retract);
                    view.vs.push(r.event.interval.start);
                    view.ve.push(r.event.interval.end);
                    view.sync.push(r.new_end);
                    view.ids.push(r.event.id.0);
                }
                Message::Cti(t) => {
                    view.kinds.push(MessageKind::Cti);
                    view.vs.push(*t);
                    view.ve.push(*t);
                    view.sync.push(*t);
                    view.ids.push(0);
                }
            }
        }
        view
    }

    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// Materialise typed payload value columns over a run of messages: the
/// payload-side counterpart of [`ColumnarView::over`]. Row `i` is message
/// `i`'s payload — an insert's event payload, a retraction's **pre-image**
/// payload (the payload the retracted event carried, which is what every
/// stateless stage evaluates on a retraction), and an all-null row for a
/// CTI (payload-less). Ragged and null cells follow the
/// [`PayloadColumns`] null-bitmap contract.
pub fn payload_columns_over(msgs: &[Message]) -> PayloadColumns {
    payload_columns_over_where(msgs, |_| true)
}

/// [`payload_columns_over`], materialising only the columns `j` with
/// `keep(j)` (see [`PayloadColumns::from_rows_where`]): a caller that
/// knows which attributes its kernels read skips scanning the rest.
pub fn payload_columns_over_where(
    msgs: &[Message],
    keep: impl Fn(usize) -> bool,
) -> PayloadColumns {
    PayloadColumns::from_rows_where(
        msgs.iter().map(|m| match m {
            Message::Insert(e) => Some(&e.payload),
            Message::Retract(r) => Some(&r.event.payload),
            Message::Cti(_) => None,
        }),
        keep,
    )
}

/// Lazily-built [`ColumnarView`] cell. Cloning a batch shares the cell
/// (the view is immutable once built, and clones hold identical message
/// runs); any mutation of the batch swaps in a fresh, unbuilt cell.
#[derive(Clone, Default)]
struct ColumnarCache(Arc<OnceLock<ColumnarView>>);

impl ColumnarCache {
    fn get_or_build(&self, msgs: &[Message]) -> &ColumnarView {
        self.0.get_or_init(|| ColumnarView::over(msgs))
    }

    fn reset(&mut self) {
        self.0 = Arc::new(OnceLock::new());
    }

    fn is_built(&self) -> bool {
        self.0.get().is_some()
    }
}

impl fmt::Debug for ColumnarCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_built() {
            "ColumnarCache(built)"
        } else {
            "ColumnarCache(empty)"
        })
    }
}

/// Lazily-built [`PayloadColumns`] cell: same share-on-clone /
/// fresh-on-mutation contract as [`ColumnarCache`], for the payload side.
#[derive(Clone, Default)]
struct PayloadCache(Arc<OnceLock<PayloadColumns>>);

impl PayloadCache {
    fn get_or_build(&self, msgs: &[Message]) -> &PayloadColumns {
        self.0.get_or_init(|| payload_columns_over(msgs))
    }

    fn reset(&mut self) {
        self.0 = Arc::new(OnceLock::new());
    }

    fn is_built(&self) -> bool {
        self.0.get().is_some()
    }
}

impl fmt::Debug for PayloadCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_built() {
            "PayloadCache(built)"
        } else {
            "PayloadCache(empty)"
        })
    }
}

/// An ordered run of messages, cheap to clone (events are `Arc`-shared).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MessageBatch {
    msgs: Vec<Message>,
    columnar: ColumnarCache,
    payloads: PayloadCache,
}

/// Equality is over the message run only; the columnar cache is a
/// materialisation detail.
impl PartialEq for MessageBatch {
    fn eq(&self, other: &Self) -> bool {
        self.msgs == other.msgs
    }
}

impl Eq for MessageBatch {}

impl MessageBatch {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        MessageBatch {
            msgs: Vec::with_capacity(n),
            columnar: ColumnarCache::default(),
            payloads: PayloadCache::default(),
        }
    }

    pub fn push(&mut self, msg: Message) {
        self.columnar.reset();
        self.payloads.reset();
        self.msgs.push(msg);
    }

    pub fn extend(&mut self, msgs: impl IntoIterator<Item = Message>) {
        self.columnar.reset();
        self.payloads.reset();
        self.msgs.extend(msgs);
    }

    /// Append a sealing `CTI(t)` guarantee.
    pub fn push_cti(&mut self, t: TimePoint) {
        self.columnar.reset();
        self.payloads.reset();
        self.msgs.push(Message::Cti(t));
    }

    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Number of data (non-CTI) messages.
    pub fn data_messages(&self) -> usize {
        self.msgs.iter().filter(|m| m.is_data()).count()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Message> {
        self.msgs.iter()
    }

    pub fn as_slice(&self) -> &[Message] {
        &self.msgs
    }

    /// Highest `Sync` value in the batch, if any.
    pub fn max_sync(&self) -> Option<TimePoint> {
        self.msgs.iter().map(|m| m.sync()).max()
    }

    pub fn clear(&mut self) {
        self.columnar.reset();
        self.payloads.reset();
        self.msgs.clear();
    }

    /// The struct-of-arrays [`ColumnarView`] over this batch, built lazily
    /// on first access and cached. Clones of this batch share the cached
    /// view; any mutation (`push`, `extend`, `push_cti`, `clear`)
    /// invalidates this batch's cache without touching clones', and split
    /// products ([`MessageBatch::split_at`], [`MessageBatch::chunks`],
    /// [`MessageBatch::chunks_of`]) start with fresh, unbuilt caches.
    pub fn columnar(&self) -> &ColumnarView {
        self.columnar.get_or_build(&self.msgs)
    }

    /// Has the columnar view been materialised yet? Observability hook for
    /// tests asserting cache sharing and invalidation.
    pub fn columnar_is_materialized(&self) -> bool {
        self.columnar.is_built()
    }

    /// The typed [`PayloadColumns`] over this batch's messages, built
    /// lazily on first access and cached under the same contract as
    /// [`MessageBatch::columnar`]: clones share the built columns, any
    /// mutation invalidates this batch's cache without touching clones',
    /// and split products start fresh and unbuilt.
    pub fn payload_columns(&self) -> &PayloadColumns {
        self.payloads.get_or_build(&self.msgs)
    }

    /// Have the payload columns been materialised yet?
    pub fn payload_columns_is_materialized(&self) -> bool {
        self.payloads.is_built()
    }

    pub fn into_messages(self) -> Vec<Message> {
        self.msgs
    }

    /// Split into `[0, mid)` and `[mid, len)` without copying payloads
    /// (messages are `Arc`-shared clones). `mid` is clamped to the length.
    pub fn split_at(&self, mid: usize) -> (MessageBatch, MessageBatch) {
        let mid = mid.min(self.msgs.len());
        (
            MessageBatch::from(self.msgs[..mid].to_vec()),
            MessageBatch::from(self.msgs[mid..].to_vec()),
        )
    }

    /// Cut into `n` contiguous, near-equal chunks (lengths differ by at
    /// most one; earlier chunks are larger). Chunks preserve order, so
    /// concatenating them always reconstructs the batch; re-merging them
    /// with [`merge_by_sync`](crate::merge::merge_by_sync) does too **for
    /// sync-ordered batches** (a disordered tape — e.g. one produced by
    /// `disorder::scramble` — would be re-sorted by the merge rule).
    /// Returns fewer than `n` chunks when the batch is shorter than `n`.
    pub fn chunks(&self, n: usize) -> Vec<MessageBatch> {
        let n = n.max(1).min(self.msgs.len().max(1));
        let base = self.msgs.len() / n;
        let rem = self.msgs.len() % n;
        let mut out = Vec::with_capacity(n);
        let mut at = 0;
        for i in 0..n {
            let len = base + usize::from(i < rem);
            if len == 0 {
                break;
            }
            out.push(MessageBatch::from(self.msgs[at..at + len].to_vec()));
            at += len;
        }
        out
    }

    /// Cut into contiguous chunks of at most `size` messages (the last
    /// chunk may be shorter). Like [`MessageBatch::chunks`] but sized by
    /// *chunk length* instead of chunk count — the natural knob when the
    /// chunk is a delivery run whose length is the amortisation factor
    /// (e.g. a bench comparing per-message `chunks_of(1)` against
    /// batch-native `chunks_of(256)` ingestion of the same tape).
    pub fn chunks_of(&self, size: usize) -> Vec<MessageBatch> {
        let size = size.max(1);
        self.msgs
            .chunks(size)
            .map(|c| MessageBatch::from(c.to_vec()))
            .collect()
    }
}

impl From<Vec<Message>> for MessageBatch {
    fn from(msgs: Vec<Message>) -> Self {
        MessageBatch {
            msgs,
            columnar: ColumnarCache::default(),
            payloads: PayloadCache::default(),
        }
    }
}

impl FromIterator<Message> for MessageBatch {
    fn from_iter<I: IntoIterator<Item = Message>>(iter: I) -> Self {
        MessageBatch::from(iter.into_iter().collect::<Vec<_>>())
    }
}

impl IntoIterator for MessageBatch {
    type Item = Message;
    type IntoIter = std::vec::IntoIter<Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.into_iter()
    }
}

impl<'a> IntoIterator for &'a MessageBatch {
    type Item = &'a Message;
    type IntoIter = std::slice::Iter<'a, Message>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::{Payload, Value};

    #[test]
    fn batch_accumulates_and_counts() {
        let mut b = MessageBatch::new();
        b.push(Message::insert(1, iv(0, 5), Payload::empty()));
        b.push(Message::insert(2, iv(3, 8), Payload::empty()));
        b.push_cti(t(3));
        assert_eq!(b.len(), 3);
        assert_eq!(b.data_messages(), 2);
        assert_eq!(b.max_sync(), Some(t(3)));
    }

    #[test]
    fn chunks_of_slices_by_length_and_reassembles() {
        let mut b = MessageBatch::new();
        for i in 0..10u64 {
            b.push(Message::insert(i, iv(i, i + 1), Payload::empty()));
        }
        let chunks = b.chunks_of(4);
        assert_eq!(
            chunks.iter().map(MessageBatch::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        let glued: MessageBatch = chunks.into_iter().flatten().collect();
        assert_eq!(glued, b);
        assert_eq!(b.chunks_of(1).len(), 10, "per-message slicing");
        assert_eq!(b.chunks_of(64).len(), 1, "oversized chunk = whole batch");
    }

    #[test]
    fn batch_round_trips_through_vec() {
        let msgs = vec![Message::Cti(t(1)), Message::Cti(t(2))];
        let b = MessageBatch::from(msgs.clone());
        assert_eq!(b.clone().into_messages(), msgs);
        assert_eq!(b.iter().count(), 2);
    }

    fn ten() -> MessageBatch {
        let mut b = MessageBatch::new();
        for i in 0..10u64 {
            b.push(Message::insert(i, iv(i, i + 1), Payload::empty()));
        }
        b
    }

    #[test]
    fn slicing_an_empty_batch() {
        let e = MessageBatch::new();
        let (l, r) = e.split_at(0);
        assert!(l.is_empty() && r.is_empty());
        let (l, r) = e.split_at(5);
        assert!(l.is_empty() && r.is_empty(), "mid past len clamps");
        assert!(e.chunks_of(4).is_empty(), "no chunks from nothing");
        assert_eq!(e.chunks(3).len(), 0);
        assert!(e.columnar().is_empty());
    }

    #[test]
    fn split_at_edges_and_clamping() {
        let b = ten();
        let (l, r) = b.split_at(0);
        assert!(l.is_empty());
        assert_eq!(r, b);
        let (l, r) = b.split_at(10);
        assert_eq!(l, b);
        assert!(r.is_empty());
        let (l, r) = b.split_at(99);
        assert_eq!(l, b, "oversized mid clamps to len");
        assert!(r.is_empty());
        let (l, r) = b.split_at(1);
        assert_eq!((l.len(), r.len()), (1, 9));
    }

    #[test]
    fn chunk_size_zero_and_one_and_oversized() {
        let b = ten();
        // Size 0 clamps to 1 rather than looping forever or panicking.
        assert_eq!(b.chunks_of(0).len(), 10);
        assert_eq!(b.chunks_of(1).len(), 10);
        assert_eq!(b.chunks_of(11).len(), 1);
        assert_eq!(b.chunks(0).len(), 1, "count 0 clamps to 1 chunk");
        assert_eq!(b.chunks(1).len(), 1);
        let c = b.chunks(99);
        assert_eq!(c.len(), 10, "more chunks than messages caps at len");
        assert!(c.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn columnar_view_builds_lazily_and_mutation_invalidates() {
        let mut b = ten();
        assert!(!b.columnar_is_materialized(), "lazy until first access");
        assert_eq!(b.columnar().len(), 10);
        assert_eq!(b.columnar().kinds[0], MessageKind::Insert);
        assert!(b.columnar_is_materialized());
        b.push_cti(t(50));
        assert!(!b.columnar_is_materialized(), "push invalidates");
        assert_eq!(b.columnar().len(), 11);
        assert_eq!(b.columnar().kinds[10], MessageKind::Cti);
        b.clear();
        assert!(!b.columnar_is_materialized(), "clear invalidates");
        assert!(b.columnar().is_empty());
    }

    #[test]
    fn columnar_cache_shared_by_clones_fresh_on_split_products() {
        let b = ten();
        let clone = b.clone();
        let _ = b.columnar();
        assert!(
            clone.columnar_is_materialized(),
            "clones share the cached view"
        );
        // Split products describe different runs: fresh, unbuilt caches.
        let (l, r) = b.split_at(4);
        assert!(!l.columnar_is_materialized());
        assert!(!r.columnar_is_materialized());
        assert_eq!(l.columnar().len(), 4);
        assert_eq!(r.columnar().len(), 6);
        for c in b.chunks_of(3) {
            assert!(!c.columnar_is_materialized());
        }
        // Mutating one clone never poisons the other's built view.
        let mut m = b.clone();
        m.push_cti(t(9));
        assert!(b.columnar_is_materialized());
        assert_eq!(b.columnar().len(), 10);
        assert_eq!(m.columnar().len(), 11);
    }

    #[test]
    fn payload_columns_build_lazily_share_with_clones_fresh_on_splits() {
        let mut b = MessageBatch::new();
        for i in 0..6u64 {
            b.push(Message::insert(
                i,
                iv(i, i + 2),
                Payload::from_values(vec![Value::Int(i as i64)]),
            ));
        }
        assert!(!b.payload_columns_is_materialized(), "lazy until accessed");
        let clone = b.clone();
        assert_eq!(b.payload_columns().rows(), 6);
        assert!(
            clone.payload_columns_is_materialized(),
            "clones share the built columns"
        );
        // The two caches are independent: touching payload columns does
        // not materialise the temporal view, and vice versa.
        assert!(!b.columnar_is_materialized());
        let (l, r) = b.split_at(2);
        assert!(!l.payload_columns_is_materialized());
        assert!(!r.payload_columns_is_materialized());
        assert_eq!(l.payload_columns().rows(), 2);
        assert_eq!(r.payload_columns().rows(), 4);
        for c in b.chunks_of(4) {
            assert!(!c.payload_columns_is_materialized());
        }
        // Mutation invalidates this batch only, never a clone's view.
        let mut m = b.clone();
        m.push_cti(t(9));
        assert!(!m.payload_columns_is_materialized(), "push invalidates");
        assert!(b.payload_columns_is_materialized());
        assert_eq!(m.payload_columns().rows(), 7);
        assert_eq!(b.payload_columns().rows(), 6);
        m.clear();
        assert!(!m.payload_columns_is_materialized(), "clear invalidates");
        assert_eq!(m.payload_columns().rows(), 0);
    }

    /// Satellite regression: ragged payloads — shorter than the widest row
    /// of the run, empty, or carrying explicit `Value::Null` — materialise
    /// as null-bitmap cells that read back exactly what
    /// `Scalar::eval_payload`'s `unwrap_or(Value::Null)` fallback yields.
    #[test]
    fn payload_columns_ragged_and_null_rows_match_eval_fallback() {
        let mut b = MessageBatch::new();
        let wide = Payload::from_values(vec![Value::Int(7), Value::str("row0"), Value::Float(1.5)]);
        let short = Payload::from_values(vec![Value::Int(8)]);
        let empty = Payload::empty();
        let with_null = Payload::from_values(vec![Value::Null, Value::str("row3")]);
        b.push(Message::insert(1, iv(0, 5), wide.clone()));
        b.push(Message::insert(2, iv(1, 6), short.clone()));
        b.push(Message::insert(3, iv(2, 7), empty.clone()));
        b.push(Message::insert(4, iv(3, 8), with_null.clone()));
        b.push_cti(t(4)); // payload-less row: all-null
        let cols = b.payload_columns();
        assert_eq!((cols.rows(), cols.width()), (5, 3));
        let payloads = [
            Some(&wide),
            Some(&short),
            Some(&empty),
            Some(&with_null),
            None,
        ];
        for (i, p) in payloads.iter().enumerate() {
            for j in 0..4 {
                let expect = p.and_then(|p| p.get(j)).cloned().unwrap_or(Value::Null);
                assert_eq!(cols.value_at(j, i), expect, "row {i} col {j}");
            }
        }
        // Explicit nulls and missing tails are indistinguishable reads.
        assert!(cols.col(0).unwrap().is_null(3), "explicit Value::Null");
        assert!(cols.col(1).unwrap().is_null(1), "short row tail");
        assert!(cols.col(0).unwrap().is_null(2), "empty payload");
    }

    /// Retract rows column the **pre-image** payload — what a stateless
    /// stage evaluates when it processes the retraction.
    #[test]
    fn payload_columns_retract_rows_use_preimage_payload() {
        let mut b = MessageBatch::new();
        let e = std::sync::Arc::new(cedr_temporal::Event::primitive(
            cedr_temporal::EventId(9),
            iv(2, 8),
            Payload::from_values(vec![Value::Int(42)]),
        ));
        b.push(Message::Retract(crate::message::Retraction {
            event: e,
            new_end: t(5),
        }));
        assert_eq!(b.payload_columns().value_at(0, 0), Value::Int(42));
    }

    #[test]
    fn columnar_view_retract_columns_keep_original_ve() {
        let mut b = MessageBatch::new();
        let e = std::sync::Arc::new(cedr_temporal::Event::primitive(
            cedr_temporal::EventId(9),
            iv(2, 8),
            Payload::empty(),
        ));
        b.push(Message::Retract(crate::message::Retraction {
            event: e,
            new_end: t(5),
        }));
        let v = b.columnar();
        assert_eq!(v.kinds[0], MessageKind::Retract);
        assert_eq!(v.vs[0], t(2));
        assert_eq!(v.ve[0], t(8), "pre-retraction end, not new_end");
        assert_eq!(v.sync[0], t(5), "sync is the retraction's new_end");
        assert_eq!(v.ids[0], 9);
    }
}
