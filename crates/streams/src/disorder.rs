//! The unreliable-delivery substrate.
//!
//! The paper attributes out-of-order delivery to "unreliable network
//! protocols, system crash recovery, and other anomalies in the physical
//! world" (Section 2). We do not have the authors' enterprise network, so —
//! per the substitution rule in DESIGN.md — this module simulates one: a
//! seeded, parameterised scrambler that perturbs a sync-ordered stream into
//! a logically equivalent, physically disordered one, re-issuing *valid*
//! CTIs at a configurable frequency.
//!
//! The two knobs map directly onto Figure 8's "Orderliness" axis:
//! `max_delay` controls how far events stray from sync order, and
//! `cti_period` controls "the frequency of application declared sync
//! points".

use crate::message::Message;
use cedr_temporal::{Duration, TimePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated unreliable channel.
#[derive(Clone, Debug)]
pub struct DisorderConfig {
    /// RNG seed; equal seeds reproduce identical deliveries.
    pub seed: u64,
    /// Maximum delivery delay, in application-time ticks. `0` = in-order.
    pub max_delay: u64,
    /// Emit a CTI after every `cti_period` delivered data messages
    /// (`None` = no CTIs at all).
    pub cti_period: Option<usize>,
    /// Probability that a data message is duplicated (at-least-once
    /// delivery). Duplicates are benign for well-behaved operators that
    /// deduplicate by event identity; default 0.
    pub dup_probability: f64,
}

impl DisorderConfig {
    /// Perfectly ordered delivery with per-message CTIs: the "high
    /// orderliness" end of Figure 8.
    pub fn ordered(seed: u64) -> Self {
        DisorderConfig {
            seed,
            max_delay: 0,
            cti_period: Some(1),
            dup_probability: 0.0,
        }
    }

    /// Heavy disorder with sparse CTIs: the "low orderliness" end.
    pub fn heavy(seed: u64, max_delay: u64, cti_period: usize) -> Self {
        DisorderConfig {
            seed,
            max_delay,
            cti_period: Some(cti_period),
            dup_probability: 0.0,
        }
    }
}

/// Scramble a **sync-ordered** stream into a delayed delivery order.
///
/// Each data message is assigned a delivery key `sync + U[0, max_delay]`;
/// messages are stably sorted by that key. Source CTIs are discarded and
/// fresh ones are re-derived from what has actually been delivered: after
/// every `cti_period` data messages a `CTI(t)` is emitted with the largest
/// `t` such that every undelivered message has `Sync ≥ t` — exactly the
/// "guarantees on input time" an upstream provider could legitimately
/// declare. A final `CTI(∞)` seals the stream if the source was sealed.
pub fn scramble(source: &[Message], cfg: &DisorderConfig) -> Vec<Message> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sealed = matches!(source.last(), Some(Message::Cti(t)) if t.is_infinite());

    // Assign delivery keys to data messages only.
    let mut keyed: Vec<(TimePoint, usize, Message)> = Vec::with_capacity(source.len());
    for (i, m) in source.iter().enumerate() {
        if !m.is_data() {
            continue;
        }
        let delay = if cfg.max_delay == 0 {
            0
        } else {
            rng.gen_range(0..=cfg.max_delay)
        };
        let key = m.sync() + Duration(delay);
        keyed.push((key, i, m.clone()));
        if cfg.dup_probability > 0.0 && rng.gen_bool(cfg.dup_probability) {
            let extra = if cfg.max_delay == 0 {
                0
            } else {
                rng.gen_range(0..=cfg.max_delay)
            };
            keyed.push((m.sync() + Duration(extra), i, m.clone()));
        }
    }
    keyed.sort_by_key(|(key, i, _)| (*key, *i));

    // Counting multiset of undelivered syncs: bounds the CTIs we may emit.
    let mut remaining: std::collections::BTreeMap<TimePoint, usize> =
        std::collections::BTreeMap::new();
    for (_, _, m) in &keyed {
        *remaining.entry(m.sync()).or_insert(0) += 1;
    }

    let mut out = Vec::with_capacity(
        keyed.len() + keyed.len() / cfg.cti_period.unwrap_or(usize::MAX).max(1) + 2,
    );
    let mut since_cti = 0usize;
    let mut last_cti = TimePoint::ZERO;
    for (_, _, m) in keyed {
        let sync = m.sync();
        if let Some(count) = remaining.get_mut(&sync) {
            *count -= 1;
            if *count == 0 {
                remaining.remove(&sync);
            }
        }
        out.push(m);
        since_cti += 1;
        if let Some(period) = cfg.cti_period {
            if since_cti >= period {
                since_cti = 0;
                // Safe CTI: no undelivered message has a smaller sync.
                let safe = remaining
                    .keys()
                    .next()
                    .copied()
                    .unwrap_or(TimePoint::INFINITY);
                if safe > last_cti && safe.is_finite() {
                    out.push(Message::Cti(safe));
                    last_cti = safe;
                }
            }
        }
    }
    if sealed {
        out.push(Message::Cti(TimePoint::INFINITY));
    }
    out
}

/// Measure disorder of a delivered stream: the fraction of adjacent data
/// pairs that are out of sync order, and the maximum backwards jump.
pub fn disorder_profile(stream: &[Message]) -> (f64, u64) {
    let syncs: Vec<TimePoint> = stream
        .iter()
        .filter(|m| m.is_data())
        .map(|m| m.sync())
        .collect();
    if syncs.len() < 2 {
        return (0.0, 0);
    }
    let mut inversions = 0usize;
    let mut max_jump = 0u64;
    let mut running_max = syncs[0];
    for w in syncs.windows(2) {
        if w[1] < w[0] {
            inversions += 1;
        }
        if w[1] < running_max {
            if let Some(d) = running_max.since(w[1]) {
                if !d.is_infinite() {
                    max_jump = max_jump.max(d.0);
                }
            }
        }
        running_max = TimePoint::max_of(running_max, w[1]);
    }
    (inversions as f64 / (syncs.len() - 1) as f64, max_jump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::StreamBuilder;
    use cedr_temporal::time::t;
    use cedr_temporal::Payload;

    fn ordered_stream(n: u64) -> Vec<Message> {
        let mut b = StreamBuilder::new();
        for i in 0..n {
            b.insert_at(t(i), Payload::empty());
        }
        b.build_ordered(None, true)
    }

    fn assert_ctis_legal(stream: &[Message]) {
        for (i, m) in stream.iter().enumerate() {
            if let Message::Cti(c) = m {
                for later in &stream[i + 1..] {
                    if later.is_data() {
                        assert!(later.sync() >= *c, "CTI {c} violated by later {later:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_delay_preserves_order() {
        let src = ordered_stream(50);
        let out = scramble(&src, &DisorderConfig::ordered(1));
        let (frac, jump) = disorder_profile(&out);
        assert_eq!(frac, 0.0);
        assert_eq!(jump, 0);
        assert_ctis_legal(&out);
    }

    #[test]
    fn delay_produces_bounded_disorder() {
        let src = ordered_stream(200);
        let cfg = DisorderConfig::heavy(7, 20, 10);
        let out = scramble(&src, &cfg);
        let (frac, jump) = disorder_profile(&out);
        assert!(frac > 0.0, "expected some inversions");
        assert!(jump <= 20, "jump {jump} exceeds max_delay");
        assert_ctis_legal(&out);
    }

    #[test]
    fn scrambling_is_deterministic_per_seed() {
        let src = ordered_stream(100);
        let cfg = DisorderConfig::heavy(42, 15, 5);
        assert_eq!(scramble(&src, &cfg), scramble(&src, &cfg));
        let other = DisorderConfig::heavy(43, 15, 5);
        assert_ne!(scramble(&src, &cfg), scramble(&src, &other));
    }

    #[test]
    fn data_is_preserved_as_a_multiset() {
        let src = ordered_stream(80);
        let cfg = DisorderConfig::heavy(3, 30, 7);
        let out = scramble(&src, &cfg);
        let mut a: Vec<String> = src
            .iter()
            .filter(|m| m.is_data())
            .map(|m| format!("{m:?}"))
            .collect();
        let mut b: Vec<String> = out
            .iter()
            .filter(|m| m.is_data())
            .map(|m| format!("{m:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sealed_streams_stay_sealed() {
        let src = ordered_stream(10);
        let out = scramble(&src, &DisorderConfig::heavy(5, 10, 3));
        assert_eq!(out.last(), Some(&Message::Cti(TimePoint::INFINITY)));
    }

    #[test]
    fn duplicates_can_be_injected() {
        let src = ordered_stream(100);
        let cfg = DisorderConfig {
            seed: 11,
            max_delay: 5,
            cti_period: Some(10),
            dup_probability: 0.5,
        };
        let out = scramble(&src, &cfg);
        let data = out.iter().filter(|m| m.is_data()).count();
        assert!(data > 100, "expected duplicated deliveries, got {data}");
        assert_ctis_legal(&out);
    }
}
