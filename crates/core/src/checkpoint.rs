//! Round-boundary checkpoint/restore: the full engine image, serialized.
//!
//! [`Engine::checkpoint`] writes a versioned, length-prefixed binary
//! image ([`cedr_durable::image`]) of everything the engine holds at a
//! quiescent round boundary:
//!
//! * the **`engine` section** — round counter, event-ID allocator, seal
//!   state, the sharded routing table (serialized in sorted order so the
//!   image is a pure function of the state), per-shard ingress counters
//!   and the query → shard assignment;
//! * the **`channel` section** (when a channel ingress exists) — the
//!   pump's [`Resequencer`](cedr_streams::Resequencer): every buffered
//!   emission and every per-producer lane cursor, plus the producer-key
//!   allocator and the backpressure counter;
//! * one **`query:<i>:<name>` section per registered query** — the
//!   dataflow image: every operator shell's consistency-monitor state
//!   (watermarks, alignment buffers, reorder-guard registries, chain
//!   generations), every operator module's state across all five
//!   families (stateless/fused boundary state, group-aggregate tables,
//!   join indexes, sequence slots, negation state), and the sink
//!   collector (history, stamped tape, subscription delta log, per-chain
//!   CTI cursors).
//!
//! The manifest carries the format version, the round number, a
//! **configuration hash** (engine config + catalog + query registrations,
//! so an image can never be restored into a differently shaped engine)
//! and a seed-free FNV-1a **content checksum** over the section region.
//!
//! [`Engine::restore`] is **validate-everything-first**: framing,
//! checksums, format version, configuration hash and the section
//! inventory are all checked before a single field of the engine is
//! touched, so a corrupt, truncated or mismatched image fails with a
//! typed [`EngineError::CheckpointCorrupt`] naming the offending section
//! and leaves the engine exactly as it was. Because every map is
//! serialized in sorted order and every value through the deterministic
//! [`Persist`] codec, `checkpoint → restore → checkpoint` is
//! **byte-equal** — the property `tests/recovery.rs` pins alongside
//! tape-level bit-identity of recovered runs.

use crate::engine::{Engine, EngineError};
use crate::ingest::{ChannelIngress, IngressBatch, IngressStats};
use cedr_durable::{fnv1a, read_image, write_image, CodecError, Persist, Reader, Section};
use cedr_streams::{LaneParts, MessageBatch, Resequencer, ResequencerParts};
use std::sync::Arc;

/// A buffered channel emission as it appears in the image: the routing
/// snapshot (`subs`) is dropped on write and re-resolved against the
/// restored engine's routing table on read, so the image never embeds
/// engine pointers.
struct BatchRecord {
    key: u64,
    seq: u64,
    event_type: String,
    batch: MessageBatch,
}

impl Persist for BatchRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.seq.encode(out);
        self.event_type.encode(out);
        self.batch.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BatchRecord {
            key: u64::decode(r)?,
            seq: u64::decode(r)?,
            event_type: String::decode(r)?,
            batch: MessageBatch::decode(r)?,
        })
    }
}

fn corrupt(e: CodecError) -> EngineError {
    EngineError::CheckpointCorrupt {
        section: if e.section.is_empty() {
            "image".to_string()
        } else {
            e.section
        },
        detail: e.detail,
    }
}

fn corrupt_in(section: &str, detail: impl Into<String>) -> EngineError {
    EngineError::CheckpointCorrupt {
        section: section.to_string(),
        detail: detail.into(),
    }
}

/// The serialized routing image of one shard: type name → sorted
/// subscriber list, itself sorted by type name.
fn shard_routing(shard: &crate::engine::EngineShard) -> Vec<(String, Vec<(u64, u64)>)> {
    let mut routing: Vec<(String, Vec<(u64, u64)>)> = shard
        .routing
        .iter()
        .map(|(ty, subs)| {
            (
                ty.clone(),
                subs.iter().map(|&(q, p)| (q as u64, p as u64)).collect(),
            )
        })
        .collect();
    routing.sort_by(|a, b| a.0.cmp(&b.0));
    routing
}

fn encode_ingress_stats(s: &IngressStats, out: &mut Vec<u8>) {
    s.staged_batches.encode(out);
    s.staged_messages.encode(out);
    s.admitted_batches.encode(out);
    s.admitted_messages.encode(out);
    s.backpressure_events.encode(out);
}

fn decode_ingress_stats(r: &mut Reader<'_>) -> Result<IngressStats, CodecError> {
    Ok(IngressStats {
        staged_batches: u64::decode(r)?,
        staged_messages: u64::decode(r)?,
        admitted_batches: u64::decode(r)?,
        admitted_messages: u64::decode(r)?,
        backpressure_events: u64::decode(r)?,
    })
}

impl Engine {
    /// Hash of everything that must match between the checkpointing and
    /// the restoring engine: the execution configuration, the registered
    /// event types (name + arity) and the registered queries (name,
    /// consistency spec, optimized/physical plan rendering) in
    /// registration order. Two engines built by the same registration
    /// sequence under the same config agree; anything else does not.
    fn config_hash(&self) -> u64 {
        let mut buf = Vec::new();
        self.config.threads.encode(&mut buf);
        self.config.ingress_capacity.encode(&mut buf);
        self.config.channel_depth.encode(&mut buf);
        self.config.resequencer_capacity.encode(&mut buf);
        self.config.fuse.encode(&mut buf);
        self.config.compile_kernels.encode(&mut buf);
        let mut types: Vec<&str> = self.catalog.type_names();
        types.sort_unstable();
        (types.len() as u64).encode(&mut buf);
        for ty in types {
            ty.to_string().encode(&mut buf);
            let arity = self.catalog.lookup(ty).map(|d| d.fields.len()).unwrap_or(0);
            (arity as u64).encode(&mut buf);
        }
        (self.queries.len() as u64).encode(&mut buf);
        for rq in &self.queries {
            rq.name.encode(&mut buf);
            format!("{:?}", rq.spec).encode(&mut buf);
            rq.explain.encode(&mut buf);
        }
        fnv1a(&buf)
    }

    fn query_section_name(i: usize, name: &str) -> String {
        format!("query:{i}:{name}")
    }

    /// Serialize the complete engine image to `w` at a quiescent round
    /// boundary. See the module docs for the image layout.
    ///
    /// Requires quiescence: no staged shard ingress, no undelivered
    /// dataflow queues, no pending shell work — otherwise
    /// [`EngineError::NotQuiescent`] (drain with
    /// [`Engine::run_to_quiescence`] / [`Engine::pump`] first). Emissions
    /// still buffered in the channel or its resequencer are *not* a
    /// quiescence violation: they are folded into the image's `channel`
    /// section and resume where they left off after a restore.
    ///
    /// Checkpointing does not disturb execution: the same engine can keep
    /// running afterwards, and checkpointing the restored engine again
    /// yields a byte-equal image.
    pub fn checkpoint<W: std::io::Write>(&mut self, w: &mut W) -> Result<(), EngineError> {
        let image = self.checkpoint_to_vec()?;
        w.write_all(&image).map_err(EngineError::CheckpointIo)
    }

    /// [`Engine::checkpoint`] into a fresh byte vector.
    pub fn checkpoint_to_vec(&mut self) -> Result<Vec<u8>, EngineError> {
        let t0 = self.obs.now();
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.staged_msgs > 0 || !shard.ingress.is_empty() {
                return Err(EngineError::NotQuiescent {
                    detail: format!(
                        "shard {si} holds {} staged ingress messages",
                        shard.staged_msgs
                    ),
                });
            }
        }
        // Fold the channel's side-band state into the resequencer so the
        // image is self-contained: pending disconnects close their lanes,
        // and everything sitting in the mpsc channel moves into the skew
        // buffer (bounded by the channel depth, so this cannot run away).
        if let Some(ch) = self.channel.as_mut() {
            for (key, emitted) in ch.board.drain() {
                ch.reseq.close(key, emitted);
            }
            while let Ok(item) = ch.rx.try_recv() {
                let (key, seq) = (item.key, item.seq);
                ch.reseq.accept(key, seq, item);
            }
        }

        let mut sections = Vec::new();

        let mut engine = Vec::new();
        self.rounds_completed.encode(&mut engine);
        self.next_event_id.encode(&mut engine);
        self.sealed.encode(&mut engine);
        (self.shards.len() as u64).encode(&mut engine);
        for shard in &self.shards {
            shard_routing(shard).encode(&mut engine);
            encode_ingress_stats(&shard.stats, &mut engine);
        }
        let shard_of: Vec<u64> = self.shard_of_query.iter().map(|&s| s as u64).collect();
        shard_of.encode(&mut engine);
        // Channel accounting outliving the channel itself (pump totals,
        // backpressure retired at seal) — semantic counters, so they must
        // survive a failover.
        self.channel_acct.rounds.encode(&mut engine);
        self.channel_acct.batches.encode(&mut engine);
        self.channel_acct.messages.encode(&mut engine);
        self.channel_acct.retired_backpressure.encode(&mut engine);
        self.channel_acct.retired_by_producer.encode(&mut engine);
        self.channel_acct.seen.encode(&mut engine);
        sections.push(Section {
            name: "engine".to_string(),
            payload: engine,
        });

        if let Some(ch) = self.channel.as_ref() {
            let mut payload = Vec::new();
            ch.next_key.encode(&mut payload);
            ch.board
                .backpressure
                .load(std::sync::atomic::Ordering::Relaxed)
                .encode(&mut payload);
            ch.board.backpressure_by_producer().encode(&mut payload);
            let parts = ch.reseq.to_parts();
            let parts = ResequencerParts {
                frontier: parts.frontier,
                lanes: parts
                    .lanes
                    .into_iter()
                    .map(|lane| LaneParts {
                        key: lane.key,
                        base: lane.base,
                        next_seq: lane.next_seq,
                        final_seq: lane.final_seq,
                        buffered: lane
                            .buffered
                            .into_iter()
                            .map(|(seq, item)| {
                                (
                                    seq,
                                    BatchRecord {
                                        key: item.key,
                                        seq: item.seq,
                                        event_type: item.event_type.to_string(),
                                        batch: item.batch,
                                    },
                                )
                            })
                            .collect(),
                    })
                    .collect(),
            };
            parts.encode(&mut payload);
            sections.push(Section {
                name: "channel".to_string(),
                payload,
            });
        }

        for (i, rq) in self.queries.iter().enumerate() {
            let mut payload = Vec::new();
            rq.plan.dataflow.state_snapshot(&mut payload).map_err(|e| {
                EngineError::NotQuiescent {
                    detail: format!("query '{}': {}", rq.name, e.detail),
                }
            })?;
            sections.push(Section {
                name: Engine::query_section_name(i, &rq.name),
                payload,
            });
        }

        let image = write_image(self.rounds_completed, self.config_hash(), &sections);
        let nanos = self.obs.now().saturating_sub(t0);
        self.ckpt.checkpoints += 1;
        self.ckpt.checkpoint_bytes += image.len() as u64;
        self.obs.with_timings(|t| t.checkpoint_write.record(nanos));
        let bytes = image.len() as u64;
        self.obs
            .trace(|| cedr_obs::TraceEvent::Checkpoint { bytes, nanos });
        Ok(image)
    }

    /// Restore a checkpoint image written by [`Engine::checkpoint`] into
    /// this engine, which must have been prepared by the **same
    /// registration sequence** under the **same configuration** (same
    /// event types, same queries in the same order — checked via the
    /// manifest's configuration hash).
    ///
    /// Validation is strictly before mutation: framing, checksums, the
    /// format version, the configuration hash and the full section
    /// inventory are verified first, so any [`EngineError::CheckpointCorrupt`]
    /// leaves the engine untouched. After a successful restore the engine
    /// is indistinguishable from the checkpointed one: replaying the
    /// remaining input produces bit-identical tapes, deltas and CTIs, and
    /// [`Engine::seal`] behaves exactly as it would have.
    ///
    /// Channel producers reattach by calling [`Engine::channel_source`]
    /// in the original open order: restored open lanes are handed back
    /// first (emission cursors intact), then fresh keys are minted.
    pub fn restore<R: std::io::Read>(&mut self, r: &mut R) -> Result<(), EngineError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)
            .map_err(EngineError::CheckpointIo)?;
        self.restore_from_slice(&bytes)
    }

    /// [`Engine::restore`] from an in-memory image.
    pub fn restore_from_slice(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let t0 = self.obs.now();
        // Phase 1 — validate everything. `read_image` verifies magic,
        // format version, framing and every checksum before returning.
        let (manifest, sections) = read_image(bytes).map_err(corrupt)?;
        if manifest.config_hash != self.config_hash() {
            return Err(corrupt_in(
                "manifest",
                format!(
                    "configuration hash mismatch: image {:#018x}, engine {:#018x} \
                     (different config, event types or query registrations)",
                    manifest.config_hash,
                    self.config_hash()
                ),
            ));
        }
        let mut expected: Vec<String> = vec!["engine".to_string()];
        expected.extend(
            self.queries
                .iter()
                .enumerate()
                .map(|(i, rq)| Engine::query_section_name(i, &rq.name)),
        );
        for name in &expected {
            if !sections.iter().any(|s| &s.name == name) {
                return Err(corrupt_in("manifest", format!("missing section '{name}'")));
            }
        }
        for s in &sections {
            if !expected.contains(&s.name) && s.name != "channel" {
                return Err(corrupt_in(&s.name, "unexpected section"));
            }
        }
        let section = |name: &str| sections.iter().find(|s| s.name == name).map(|s| &s.payload);

        // Decode the engine section fully before touching any field.
        let engine_payload = section("engine").expect("presence checked");
        let mut er = Reader::new(engine_payload);
        let decoded = (|| -> Result<_, CodecError> {
            let rounds = u64::decode(&mut er)?;
            let next_event_id = u64::decode(&mut er)?;
            let sealed = bool::decode(&mut er)?;
            let n_shards = u64::decode(&mut er)? as usize;
            let mut shards = Vec::with_capacity(n_shards.min(1024));
            for _ in 0..n_shards {
                let routing = Vec::<(String, Vec<(u64, u64)>)>::decode(&mut er)?;
                let stats = decode_ingress_stats(&mut er)?;
                shards.push((routing, stats));
            }
            let shard_of = Vec::<u64>::decode(&mut er)?;
            let channel_acct = crate::engine::ChannelAccounting {
                rounds: u64::decode(&mut er)?,
                batches: u64::decode(&mut er)?,
                messages: u64::decode(&mut er)?,
                retired_backpressure: u64::decode(&mut er)?,
                retired_by_producer: Vec::<(u64, u64)>::decode(&mut er)?,
                seen: bool::decode(&mut er)?,
            };
            er.expect_exhausted()?;
            Ok((
                rounds,
                next_event_id,
                sealed,
                shards,
                shard_of,
                channel_acct,
            ))
        })()
        .map_err(|e| corrupt(e.in_section("engine")))?;
        let (rounds, next_event_id, sealed, image_shards, image_shard_of, channel_acct) = decoded;

        // The routing table is derived from registration; the image copy
        // exists to prove both engines route identically.
        if image_shards.len() != self.shards.len() {
            return Err(corrupt_in(
                "engine",
                format!(
                    "image has {} routing shards, engine has {}",
                    image_shards.len(),
                    self.shards.len()
                ),
            ));
        }
        for (si, (shard, (routing, _))) in self.shards.iter().zip(image_shards.iter()).enumerate() {
            if &shard_routing(shard) != routing {
                return Err(corrupt_in(
                    "engine",
                    format!("shard {si} routing table differs from the image"),
                ));
            }
        }
        let shard_of: Vec<usize> = image_shard_of.iter().map(|&s| s as usize).collect();
        if shard_of != self.shard_of_query {
            return Err(corrupt_in("engine", "query → shard assignment differs"));
        }

        // Decode the channel section (if present) before mutating.
        let channel_state = match section("channel") {
            None => None,
            Some(payload) => {
                let mut cr = Reader::new(payload);
                let decoded = (|| -> Result<_, CodecError> {
                    let next_key = u64::decode(&mut cr)?;
                    let backpressure = u64::decode(&mut cr)?;
                    let by_producer = Vec::<(u64, u64)>::decode(&mut cr)?;
                    let parts = ResequencerParts::<BatchRecord>::decode(&mut cr)?;
                    cr.expect_exhausted()?;
                    Ok((next_key, backpressure, by_producer, parts))
                })()
                .map_err(|e| corrupt(e.in_section("channel")))?;
                Some(decoded)
            }
        };

        // Phase 2 — apply. Dataflow restores are per-query and validated
        // against the (hash-checked) plan shape as they decode.
        for (i, rq) in self.queries.iter_mut().enumerate() {
            let name = Engine::query_section_name(i, &rq.name);
            let payload = section(&name).expect("presence checked");
            let mut qr = Reader::new(payload);
            rq.plan
                .dataflow
                .state_restore(&mut qr)
                .and_then(|()| qr.expect_exhausted())
                .map_err(|e| corrupt(e.in_section(&name)))?;
        }
        self.rounds_completed = rounds;
        self.next_event_id = next_event_id;
        self.sealed = sealed;
        for (shard, (_, stats)) in self.shards.iter_mut().zip(image_shards) {
            shard.stats = stats;
            shard.ingress.clear();
            shard.staged_msgs = 0;
        }
        self.channel_acct = channel_acct;
        self.channel = match channel_state {
            None => None,
            Some((next_key, backpressure, by_producer, parts)) => {
                self.channel_acct.seen = true;
                let mut ch = ChannelIngress::new(self.config.channel_depth);
                ch.next_key = next_key;
                ch.board.set_backpressure(backpressure, by_producer);
                // Open lanes (ascending key order, as serialized) wait for
                // their producers to reattach via `channel_source`; the
                // emission cursor resumes at next_seq + buffered (buffered
                // seqs are contiguous — per-producer emission is FIFO).
                let parts = ResequencerParts {
                    frontier: parts.frontier,
                    lanes: parts
                        .lanes
                        .into_iter()
                        .map(|lane| {
                            if lane.final_seq.is_none() {
                                ch.resume_keys.push_back((
                                    lane.key,
                                    lane.next_seq + lane.buffered.len() as u64,
                                ));
                            }
                            LaneParts {
                                key: lane.key,
                                base: lane.base,
                                next_seq: lane.next_seq,
                                final_seq: lane.final_seq,
                                buffered: lane
                                    .buffered
                                    .into_iter()
                                    .map(|(seq, rec)| {
                                        let subs: Arc<[_]> =
                                            self.resolve_subs(&rec.event_type).into();
                                        (
                                            seq,
                                            IngressBatch {
                                                key: rec.key,
                                                seq: rec.seq,
                                                event_type: Arc::from(rec.event_type.as_str()),
                                                subs,
                                                batch: rec.batch,
                                            },
                                        )
                                    })
                                    .collect(),
                            }
                        })
                        .collect(),
                };
                ch.reseq = Resequencer::from_parts(parts);
                Some(ch)
            }
        };
        let nanos = self.obs.now().saturating_sub(t0);
        self.ckpt.restores += 1;
        self.ckpt.restore_bytes += bytes.len() as u64;
        self.obs
            .with_timings(|t| t.checkpoint_restore.record(nanos));
        let image_bytes = bytes.len() as u64;
        self.obs.trace(|| cedr_obs::TraceEvent::Restore {
            bytes: image_bytes,
            nanos,
        });
        Ok(())
    }
}
