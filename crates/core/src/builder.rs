//! Programmatic plan construction.
//!
//! The CEDR query language (Section 3) is pattern-centric; the relational
//! view-update operators of Section 6 (windows, aggregates, joins — the
//! machinery behind the paper's portfolio-monitoring scenario) are reached
//! through this fluent builder instead. Register the built plan with
//! [`Engine::register_plan`](crate::Engine::register_plan) **before**
//! opening ingestion sessions on its source streams
//! ([`Engine::source`](crate::Engine::source) /
//! [`Engine::channel_source`](crate::Engine::channel_source)): handles
//! snapshot the `(query, port)` routing at open time.
//!
//! ```
//! use cedr_core::prelude::*;
//!
//! // A 1-hour moving average of tick prices per symbol.
//! let plan = PlanBuilder::source("TICK")
//!     .window(Duration::hours(1))
//!     .group_aggregate(vec![Scalar::Field(0)], AggFunc::Avg(Scalar::Field(1)))
//!     .into_plan();
//! # let _ = plan;
//! ```

use cedr_algebra::alter_lifetime::{DeltaFn, VsFn};
use cedr_algebra::expr::{Pred, Scalar};
use cedr_algebra::pattern::ScMode;
use cedr_algebra::relational::AggFunc;
use cedr_lang::LogicalOp;
use cedr_temporal::{Duration, TimePoint};

/// Fluent builder over [`LogicalOp`].
#[derive(Clone, Debug)]
pub struct PlanBuilder {
    op: LogicalOp,
}

impl PlanBuilder {
    /// A primitive event stream.
    pub fn source(event_type: &str) -> Self {
        PlanBuilder {
            op: LogicalOp::Source {
                event_type: event_type.to_string(),
            },
        }
    }

    /// Wrap an existing logical plan.
    pub fn from_op(op: LogicalOp) -> Self {
        PlanBuilder { op }
    }

    /// σ — filter on a payload predicate.
    pub fn select(self, pred: Pred) -> Self {
        PlanBuilder {
            op: LogicalOp::Select {
                input: Box::new(self.op),
                pred,
            },
        }
    }

    /// π — project the payload.
    pub fn project(self, exprs: Vec<Scalar>, names: Vec<String>) -> Self {
        PlanBuilder {
            op: LogicalOp::Project {
                input: Box::new(self.op),
                exprs,
                names,
            },
        }
    }

    /// `W_wl` — the moving window (Definition 12 instance).
    pub fn window(self, wl: Duration) -> Self {
        PlanBuilder {
            op: LogicalOp::AlterLifetime {
                input: Box::new(self.op),
                fvs: VsFn::Vs,
                fdelta: DeltaFn::WindowClip { wl },
            },
        }
    }

    /// A hopping window.
    pub fn hopping_window(self, period: u64, size: Duration) -> Self {
        PlanBuilder {
            op: LogicalOp::AlterLifetime {
                input: Box::new(self.op),
                fvs: VsFn::HopVs { period },
                fdelta: DeltaFn::Const(size),
            },
        }
    }

    /// Π — AlterLifetime in full generality.
    pub fn alter_lifetime(self, fvs: VsFn, fdelta: DeltaFn) -> Self {
        PlanBuilder {
            op: LogicalOp::AlterLifetime {
                input: Box::new(self.op),
                fvs,
                fdelta,
            },
        }
    }

    /// `Inserts(S) = Π_{Vs, ∞}(S)`.
    pub fn inserts(self) -> Self {
        self.alter_lifetime(VsFn::Vs, DeltaFn::Infinite)
    }

    /// `Deletes(S) = Π_{Ve, ∞}(S)`.
    pub fn deletes(self) -> Self {
        self.alter_lifetime(VsFn::Ve, DeltaFn::Infinite)
    }

    /// Group-by + aggregate with view update semantics.
    pub fn group_aggregate(self, key: Vec<Scalar>, agg: AggFunc) -> Self {
        PlanBuilder {
            op: LogicalOp::GroupAggregate {
                input: Box::new(self.op),
                key,
                agg,
            },
        }
    }

    /// ⋈ — θ-join with another plan.
    pub fn join(self, other: PlanBuilder, theta: Pred) -> Self {
        PlanBuilder {
            op: LogicalOp::Join {
                left: Box::new(self.op),
                right: Box::new(other.op),
                theta,
                equi_keys: None,
            },
        }
    }

    /// ∪ — union with another plan.
    pub fn union(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            op: LogicalOp::Union {
                left: Box::new(self.op),
                right: Box::new(other.op),
            },
        }
    }

    /// SEQUENCE over sub-plans.
    pub fn sequence(inputs: Vec<PlanBuilder>, w: Duration, pred: Pred) -> Self {
        let k = inputs.len();
        PlanBuilder {
            op: LogicalOp::Sequence {
                inputs: inputs.into_iter().map(|b| b.op).collect(),
                w,
                pred,
                modes: vec![ScMode::EACH_REUSE; k],
            },
        }
    }

    /// ATLEAST over sub-plans.
    pub fn atleast(n: usize, inputs: Vec<PlanBuilder>, w: Duration, pred: Pred) -> Self {
        let k = inputs.len();
        PlanBuilder {
            op: LogicalOp::AtLeast {
                n,
                inputs: inputs.into_iter().map(|b| b.op).collect(),
                w,
                pred,
                modes: vec![ScMode::EACH_REUSE; k],
            },
        }
    }

    /// UNLESS(self, neg, w) with an injected `[main, neg]` predicate.
    pub fn unless(self, neg: PlanBuilder, w: Duration, pred: Pred) -> Self {
        PlanBuilder {
            op: LogicalOp::Unless {
                main: Box::new(self.op),
                neg: Box::new(neg.op),
                w,
                pred,
            },
        }
    }

    /// CANCEL-WHEN(self, neg).
    pub fn cancel_when(self, neg: PlanBuilder, pred: Pred) -> Self {
        PlanBuilder {
            op: LogicalOp::CancelWhen {
                main: Box::new(self.op),
                neg: Box::new(neg.op),
                pred,
            },
        }
    }

    /// `@[from, to)` — occurrence slice.
    pub fn slice_occurrence(self, from: TimePoint, to: TimePoint) -> Self {
        PlanBuilder {
            op: LogicalOp::SliceOcc {
                input: Box::new(self.op),
                from,
                to,
            },
        }
    }

    /// `#[from, to)` — valid-time slice.
    pub fn slice_valid(self, from: TimePoint, to: TimePoint) -> Self {
        PlanBuilder {
            op: LogicalOp::SliceValid {
                input: Box::new(self.op),
                from,
                to,
            },
        }
    }

    /// Finish: the logical plan.
    pub fn into_plan(self) -> LogicalOp {
        self.op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use cedr_algebra::expr::CmpOp;
    use cedr_lang::catalog::FieldType;
    use cedr_runtime::ConsistencySpec;
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::Value;

    fn tick_engine() -> Engine {
        let mut e = Engine::new();
        e.register_event_type(
            "TICK",
            vec![("sym", FieldType::Str), ("px", FieldType::Float)],
        );
        e
    }

    #[test]
    fn windowed_average_via_builder() {
        let mut e = tick_engine();
        // Point events are first extended to open lifetimes (`Inserts`),
        // then clipped by the window — the AlterLifetime idiom of §6.
        let plan = PlanBuilder::source("TICK")
            .inserts()
            .window(dur(10))
            .group_aggregate(vec![Scalar::Field(0)], AggFunc::Avg(Scalar::Field(1)))
            .into_plan();
        let q = e
            .register_plan("moving_avg", plan, ConsistencySpec::middle())
            .unwrap();
        let mut ticks = e.source("TICK").unwrap();
        for (i, px) in [10.0, 20.0, 30.0].iter().enumerate() {
            ticks
                .insert(i as u64, vec![Value::str("MSFT"), Value::Float(*px)])
                .unwrap();
        }
        drop(ticks);
        e.seal();
        let net = e.collector(q).net_table();
        // At time 2 all three ticks are in the 10-tick window: avg = 20.
        let snap = net.snapshot_at(t(2));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].payload.get(1), Some(&Value::Float(20.0)));
    }

    #[test]
    fn select_join_via_builder() {
        let mut e = tick_engine();
        e.register_event_type(
            "NEWS",
            vec![("sym", FieldType::Str), ("sentiment", FieldType::Int)],
        );
        let ticks = PlanBuilder::source("TICK").select(Pred::cmp(
            Scalar::Field(1),
            CmpOp::Gt,
            Scalar::lit(100.0),
        ));
        let news = PlanBuilder::source("NEWS");
        let plan = ticks
            .join(
                news,
                Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
            )
            .into_plan();
        let q = e
            .register_plan("hot_news", plan, ConsistencySpec::middle())
            .unwrap();
        e.source("TICK")
            .unwrap()
            .insert_for(
                cedr_temporal::Interval::new(t(0), t(10)),
                vec![Value::str("MSFT"), Value::Float(150.0)],
            )
            .unwrap();
        e.source("NEWS")
            .unwrap()
            .insert_for(
                cedr_temporal::Interval::new(t(5), t(8)),
                vec![Value::str("MSFT"), Value::Int(1)],
            )
            .unwrap();
        e.seal();
        let net = e.collector(q).net_table();
        assert_eq!(net.len(), 1);
        assert_eq!(net.rows[0].interval, cedr_temporal::interval::iv(5, 8));
        // Equi-keys extracted by the optimizer.
        assert!(e.explain(q).contains("Join"));
    }

    #[test]
    fn pattern_via_builder_matches_language() {
        let mut e = tick_engine();
        let seq = PlanBuilder::sequence(
            vec![PlanBuilder::source("TICK"), PlanBuilder::source("TICK")],
            dur(5),
            Pred::True,
        )
        .into_plan();
        let q = e
            .register_plan("pairs", seq, ConsistencySpec::middle())
            .unwrap();
        let mut ticks = e.source("TICK").unwrap();
        for i in 0..3u64 {
            ticks
                .insert(i, vec![Value::str("A"), Value::Float(1.0)])
                .unwrap();
        }
        drop(ticks);
        e.seal();
        // Pairs with strictly increasing Vs within scope 5: (0,1), (0,2), (1,2).
        assert_eq!(e.collector(q).stats().inserts, 3);
    }

    #[test]
    fn inserts_deletes_separation() {
        let mut e = tick_engine();
        let q = e
            .register_plan(
                "deletes",
                PlanBuilder::source("TICK").deletes().into_plan(),
                ConsistencySpec::middle(),
            )
            .unwrap();
        e.source("TICK")
            .unwrap()
            .insert_for(
                cedr_temporal::Interval::new(t(2), t(9)),
                vec![Value::str("A"), Value::Float(1.0)],
            )
            .unwrap();
        e.seal();
        let net = e.collector(q).net_table();
        assert_eq!(net.rows[0].interval, cedr_temporal::interval::iv_inf(9));
    }
}
