//! [`Engine::metrics`] — the unified [`MetricsSnapshot`] assembly.
//!
//! This module only *reads*: it converts the engine's live counters
//! (per-query collector stats, per-node operator stats, per-shard
//! ingress stats, channel pump state, checkpoint accounting) and the
//! [`ObsHub`](cedr_obs::ObsHub)'s histograms/trace ring into the plain
//! [`cedr_obs`] snapshot types. Rendering lives in `cedr_obs` (see
//! [`MetricsSnapshot::render_prometheus`] /
//! [`MetricsSnapshot::render_report`]); the determinism taxonomy the
//! snapshot obeys is documented in [`cedr_obs::snapshot`] and in the
//! Observability section of [`crate::engine`].

use crate::engine::Engine;
use cedr_obs::{
    ChannelCounters, CounterSnapshot, IngressCounters, MetricsSnapshot, NodeCounters, ObsClock,
    OpCounters, QueryCounters, TraceEvent,
};
use cedr_runtime::OpStats;
use std::sync::Arc;

/// Convert the runtime's per-operator stats into the dependency-free
/// mirror type (`cedr-obs` sits below `cedr-runtime`, so the mirror
/// cannot be avoided; the fields match one for one).
fn op_counters(s: &OpStats) -> OpCounters {
    OpCounters {
        arrivals: s.arrivals as u64,
        released: s.released as u64,
        forgotten: s.forgotten as u64,
        held_peak: s.held_peak as u64,
        blocked_ticks: s.blocked_ticks,
        blocked_messages: s.blocked_messages as u64,
        state_peak: s.state_peak as u64,
        batches: s.batches as u64,
        delivered: s.delivered as u64,
        batch_peak: s.batch_peak as u64,
        group_refreshes: s.group_refreshes as u64,
        probe_batches: s.probe_batches as u64,
        fused_stages: s.fused_stages as u64,
        compiled_kernel_runs: s.compiled_kernel_runs as u64,
        out_inserts: s.out_inserts as u64,
        out_retractions: s.out_retractions as u64,
        out_ctis: s.out_ctis as u64,
    }
}

fn ingress_counters(s: &crate::ingest::IngressStats) -> IngressCounters {
    IngressCounters {
        staged_batches: s.staged_batches,
        staged_messages: s.staged_messages,
        admitted_batches: s.admitted_batches,
        admitted_messages: s.admitted_messages,
        backpressure_events: s.backpressure_events,
    }
}

impl Engine {
    /// One unified snapshot of everything the engine can observe —
    /// counters (semantic + execution classes), the latency histograms
    /// and the trace-ring occupancy. Plain data: diff it, store it, or
    /// render it with
    /// [`render_prometheus`](MetricsSnapshot::render_prometheus) /
    /// [`render_report`](MetricsSnapshot::render_report).
    ///
    /// Taking a snapshot never disturbs execution and is safe at any
    /// point (mid-round counters are simply the counts so far). Consumer
    /// cursors are not engine state; attach them afterwards with
    /// [`MetricsSnapshot::record_subscription`] (or
    /// [`Subscription::observe`](crate::Subscription::observe)).
    pub fn metrics(&self) -> MetricsSnapshot {
        let queries = (0..self.queries.len())
            .map(|i| {
                let rq = &self.queries[i];
                let df = &rq.plan.dataflow;
                let col = df.collector(rq.plan.sink);
                let st = col.stats();
                QueryCounters {
                    index: i as u64,
                    name: rq.name.clone(),
                    consistency: format!("{:?}", rq.spec),
                    inserts: st.inserts as u64,
                    retractions: st.retractions as u64,
                    full_removals: st.full_removals as u64,
                    ctis: st.ctis as u64,
                    data_messages: st.data_messages as u64,
                    deltas_logged: col.delta_log().len() as u64,
                    output_cti: col.max_cti().map(|t| t.0),
                    total: op_counters(&df.total_stats()),
                    nodes: (0..df.node_count())
                        .map(|n| NodeCounters {
                            name: format!("{n}:{}", df.node_name(n)),
                            stats: op_counters(df.stats(n)),
                        })
                        .collect(),
                    subscriptions: Vec::new(),
                }
            })
            .collect();

        let shards: Vec<IngressCounters> = self
            .shards
            .iter()
            .map(|s| ingress_counters(&s.stats))
            .collect();
        let ingress_total = ingress_counters(&self.ingress_stats());

        // The channel block is present whenever a channel ingress exists
        // or ever existed (seal tears the channel down but the semantic
        // totals and retired backpressure live on in `channel_acct`).
        let acct = &self.channel_acct;
        let channel = (self.channel.is_some() || acct.seen).then(|| {
            let mut by_producer = acct.retired_by_producer.clone();
            let (open_producers, buffered_batches, waiting_on, rounds_stalled) =
                match self.channel.as_ref() {
                    None => (0, 0, None, 0),
                    Some(ch) => {
                        for (key, n) in ch.board.backpressure_by_producer() {
                            match by_producer.binary_search_by_key(&key, |&(k, _)| k) {
                                Ok(i) => by_producer[i].1 += n,
                                Err(i) => by_producer.insert(i, (key, n)),
                            }
                        }
                        (
                            ch.reseq.open_lanes() as u64,
                            ch.reseq.buffered() as u64,
                            ch.stalled_on,
                            ch.stalled_rounds,
                        )
                    }
                };
            ChannelCounters {
                open_producers,
                buffered_batches,
                waiting_on,
                rounds_stalled,
                rounds_admitted: acct.rounds,
                batches_admitted: acct.batches,
                messages_admitted: acct.messages,
                backpressure_total: self.channel_backpressure_total(),
                backpressure_by_producer: by_producer,
            }
        });

        MetricsSnapshot {
            counters: CounterSnapshot {
                rounds_completed: self.rounds_completed,
                sealed: self.sealed,
                threads: self.config.threads as u64,
                queries,
                shards,
                ingress_total,
                channel,
                checkpoints: self.ckpt,
            },
            timings: self.obs.timings(),
            trace: self.obs.trace_stats(),
        }
    }

    /// Swap the observability clock (see [`cedr_obs::ObsClock`]). Tests
    /// inject a [`cedr_obs::ManualClock`] here to make every timing
    /// histogram deterministic; counters never read the clock at all.
    pub fn set_obs_clock(&self, clock: Arc<dyn ObsClock>) {
        self.obs.set_clock(clock);
    }

    /// The buffered window of structured trace events, oldest first.
    /// Empty unless tracing is enabled
    /// ([`EngineConfig::trace_capacity`](crate::EngineConfig::trace_capacity)
    /// / `CEDR_TRACE`).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.obs.trace_events()
    }

    /// Is the structured trace ring enabled?
    pub fn tracing(&self) -> bool {
        self.obs.tracing()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PlanBuilder;
    use crate::engine::{Engine, EngineConfig};
    use cedr_algebra::expr::Pred;
    use cedr_lang::catalog::FieldType;
    use cedr_obs::{ManualClock, TraceEvent};
    use cedr_runtime::ConsistencySpec;
    use cedr_temporal::Value;
    use std::sync::Arc;

    fn engine(config: EngineConfig) -> (Engine, crate::QueryId) {
        let mut e = Engine::with_config(config);
        e.register_event_type("T", vec![("v", FieldType::Int)]);
        let plan = PlanBuilder::source("T").select(Pred::True).into_plan();
        let q = e
            .register_plan("q", plan, ConsistencySpec::middle())
            .unwrap();
        (e, q)
    }

    #[test]
    fn metrics_unify_query_shard_and_round_counters() {
        let (mut e, q) = engine(EngineConfig::serial());
        let mut src = e.source("T").unwrap();
        for i in 0..5u64 {
            src.insert(i, vec![Value::Int(i as i64)]).unwrap();
        }
        drop(src);
        e.seal();
        let snap = e.metrics();
        assert_eq!(snap.counters.rounds_completed, e.rounds_completed());
        assert!(snap.counters.sealed);
        let qc = &snap.counters.queries[0];
        assert_eq!(qc.inserts, e.collector(q).stats().inserts as u64);
        assert_eq!(qc.deltas_logged, e.collector(q).delta_log().len() as u64);
        assert!(!qc.nodes.is_empty(), "per-node counters present");
        assert_eq!(
            qc.total.out_inserts,
            e.stats(q).out_inserts as u64,
            "snapshot totals mirror Engine::stats"
        );
        assert_eq!(snap.counters.shards.len(), e.shard_count());
        assert_eq!(
            snap.counters.ingress_total.staged_messages,
            e.ingress_stats().staged_messages
        );
        assert!(snap.counters.channel.is_none(), "no channel ever existed");
    }

    #[test]
    fn channel_metrics_survive_seal_with_producer_attribution() {
        let (mut e, _q) = engine(EngineConfig::serial().with_channel_depth(1));
        let mut src = e.channel_source("T").unwrap().manual_flush();
        let key = src.producer_key();
        // Fill the depth-1 channel, then overflow it via the try path.
        src.insert(0, vec![Value::Int(0)]).unwrap();
        src.try_flush().unwrap();
        src.insert(1, vec![Value::Int(1)]).unwrap();
        src.try_flush().unwrap_err();
        e.pump().unwrap();
        src.try_flush().unwrap();
        drop(src);
        e.run_pipelined().unwrap();
        let live = e.metrics();
        let ch = live.counters.channel.as_ref().expect("channel present");
        assert_eq!(ch.backpressure_by_producer, vec![(key, 1)]);
        assert_eq!(ch.backpressure_total, 1);
        assert_eq!(ch.messages_admitted, 2);
        e.seal();
        let sealed = e.metrics();
        let ch = sealed.counters.channel.as_ref().expect("block survives");
        assert_eq!(
            ch.backpressure_by_producer,
            vec![(key, 1)],
            "attribution survives the channel teardown at seal"
        );
        assert_eq!(sealed.counters.ingress_total.backpressure_events, 1);
        assert_eq!(
            sealed.counters.shards[0].backpressure_events, 0,
            "channel backpressure is no longer mis-attributed to shard 0"
        );
    }

    #[test]
    fn manual_clock_drives_timings_without_touching_counters() {
        let (mut e, _q) = engine(EngineConfig::serial());
        let clock = Arc::new(ManualClock::new());
        e.set_obs_clock(clock.clone());
        clock.set(1_000);
        let mut src = e.source("T").unwrap();
        src.insert(1, vec![Value::Int(1)]).unwrap();
        drop(src);
        clock.advance(500);
        e.run_to_quiescence();
        let snap = e.metrics();
        assert_eq!(snap.timings.round_drain.max(), 0, "clock froze mid-round");
        assert!(
            snap.timings.ingest_to_delta.count() >= 1,
            "admission→delta window closed"
        );
        assert_eq!(snap.counters.queries[0].inserts, 1, "counters clock-free");
    }

    #[test]
    fn trace_ring_records_round_lifecycle_when_enabled() {
        let (mut e, _q) = engine(EngineConfig::serial().with_trace_capacity(64));
        assert!(e.tracing());
        let mut src = e.source("T").unwrap();
        src.insert(1, vec![Value::Int(1)]).unwrap();
        drop(src);
        e.seal();
        let events = e.trace_events();
        assert!(events
            .iter()
            .any(|ev| matches!(ev, TraceEvent::RoundStart { .. })));
        assert!(events
            .iter()
            .any(|ev| matches!(ev, TraceEvent::RoundEnd { .. })));
        assert!(events
            .iter()
            .any(|ev| matches!(ev, TraceEvent::Seal { .. })));
        // Capacity 0 disables the ring regardless of `CEDR_TRACE` (the
        // test suite runs under a CEDR_TRACE=1 CI leg).
        let (mut e2, _) = engine(EngineConfig::serial().with_trace_capacity(0));
        assert!(!e2.tracing(), "capacity 0 disables tracing");
        e2.seal();
        assert!(e2.trace_events().is_empty());
        assert_eq!(e2.metrics().trace.recorded, 0);
    }
}
