//! Concurrent ingestion: `Send + Clone` channel sources feeding a
//! pump-driven engine.
//!
//! [`SourceHandle`](crate::SourceHandle) borrows the
//! engine, which pins every provider to the drain thread. This module is
//! the escape: [`Engine::channel_source`](crate::Engine::channel_source)
//! returns a [`ChannelSource`] — a **`Send + Clone` handle with no engine
//! borrow** that carries its pre-resolved `(query, port)` routing (the
//! `Arc`-shared copy-on-write subscriber slice of the routing table) and
//! feeds a **bounded mpsc ingress**. Provider threads stage typed events
//! exactly like a borrowed handle and flush whole batches across the
//! thread boundary (events stay `Arc`-shared — a hand-off is refcount
//! bumps, never payload copies), while the engine thread interleaves
//! channel drains with sharded quiescence passes via
//! [`Engine::pump`](crate::Engine::pump) /
//! [`Engine::run_pipelined`](crate::Engine::run_pipelined).
//!
//! # Which handle do I want?
//!
//! | | [`SourceHandle`](crate::SourceHandle) (borrowed) | [`ChannelSource`] (channel) |
//! |---|---|---|
//! | obtained from | [`Engine::source`](crate::Engine::source) | [`Engine::channel_source`](crate::Engine::channel_source) |
//! | engine borrow | exclusive, for the session's lifetime | **none** — `Send + Clone`, free-threaded |
//! | threads | provider == drain thread | providers on any threads, engine pumps |
//! | routing | resolved once, cannot go stale (borrow) | resolved once, snapshot at open/clone time |
//! | staging | local batch, auto-flush at 512 | local batch, auto-flush at 512 |
//! | flush target | bounded per-shard ingress | bounded mpsc channel ([`EngineConfig::channel_depth`](crate::EngineConfig::channel_depth)) |
//! | backpressure | `flush` drains the engine; `try_flush` → [`EngineError::IngressFull`] | `flush` blocks on the channel; `try_flush` → [`EngineError::IngressFull`] |
//! | per-message latency | [`send`](crate::SourceHandle::send) cascades immediately | none — batches run at the next pump round |
//! | drains the engine | yes (flush under pressure, `sync`) | never — the pump does |
//! | end of stream | drop the handle | drop (disconnect) or [`ChannelSource::seal`] |
//!
//! Rule of thumb: one borrowed handle per burst on the engine thread;
//! one channel source per provider *thread*. Clones of a channel source
//! share its origin (see [`ChannelSource::clone`]).
//!
//! # Order-insensitivity, end to end
//!
//! Every flush is stamped with its origin `(producer key, emission seq)`
//! — the stamp vocabulary of the sharded scheduler's deterministic merge
//! — and the pump releases admitted batches through a
//! [`Resequencer`] in canonical
//! `(round, producer key)` order, one sharded quiescence pass per round.
//! Engine-side execution is therefore a pure function of the *logical*
//! per-producer streams: however the provider threads interleave, the
//! admission schedule — and with it the stamped output tape and every
//! subscription delta, at every consistency level — is bit-identical to
//! single-threaded ingestion of the same emissions
//! (`tests/concurrent_ingest.rs` pins this across seeds × producer
//! counts × worker counts). That is the paper's order-insensitivity
//! claim, proven at the tape level rather than assumed.
//!
//! The cost is the watermark trade-off every streaming system makes: a
//! round is admitted only when each open producer has delivered its
//! emission for that round or disconnected, so one silent provider
//! stalls admission (buffered skew is reported via
//! [`PumpProgress::buffered_batches`]). Providers that flush at similar
//! cadence — or disconnect promptly — keep the pipeline moving.
//!
//! ```
//! use cedr_core::prelude::*;
//! use std::thread;
//!
//! let mut engine = Engine::new();
//! engine.register_event_type("TICK", vec![("v", FieldType::Int)]);
//! let plan = PlanBuilder::source("TICK").select(Pred::True).into_plan();
//! let q = engine
//!     .register_plan("ticks", plan, ConsistencySpec::middle())
//!     .unwrap();
//! let mut src = engine.channel_source("TICK").unwrap();
//!
//! let producer = thread::spawn(move || {
//!     for i in 0..100u64 {
//!         src.insert(i, vec![Value::Int(i as i64)]).unwrap();
//!     }
//! }); // dropping `src` flushes and disconnects
//!
//! engine.run_pipelined().unwrap(); // pump until every producer is done
//! producer.join().unwrap();
//! engine.seal();
//! assert_eq!(engine.collector(q).stats().inserts, 100);
//! ```

use crate::engine::{Engine, EngineError, SubscriberList};
use cedr_obs::{ObsHub, TraceEvent};
use cedr_streams::{Message, MessageBatch, Resequencer, Retraction};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Bit position splitting the [`EventId`] space: engine-minted IDs count
/// up from 1, channel sources mint `(producer key << 44) | n`. The two
/// ranges meet only after 2^44 engine-minted events.
const CHANNEL_ID_SHIFT: u32 = 44;

/// One flushed emission crossing the provider → engine channel.
#[derive(Clone)]
pub(crate) struct IngressBatch {
    pub(crate) key: u64,
    pub(crate) seq: u64,
    pub(crate) event_type: Arc<str>,
    pub(crate) subs: Arc<[(usize, SubscriberList)]>,
    pub(crate) batch: MessageBatch,
}

/// Lock-free-enough disconnect side-channel: posting never blocks on the
/// bounded data channel, so a producer can always retire — even from a
/// panicking thread with the channel full. Also carries the
/// producer-side backpressure counters (flushes that found the channel
/// full) — a total the engine folds into its [`IngressStats`], plus the
/// per-producer attribution surfaced by
/// [`Engine::metrics`](crate::Engine::metrics).
#[derive(Default)]
pub(crate) struct DisconnectBoard {
    posted: Mutex<Vec<(u64, u64)>>,
    pub(crate) backpressure: AtomicU64,
    by_producer: Mutex<BTreeMap<u64, u64>>,
}

impl DisconnectBoard {
    fn post(&self, key: u64, emitted: u64) {
        self.posted
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((key, emitted));
    }

    pub(crate) fn drain(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut *self.posted.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Count one full-channel event against producer `key` (total + the
    /// per-producer attribution).
    pub(crate) fn note_backpressure(&self, key: u64) {
        self.backpressure.fetch_add(1, Ordering::Relaxed);
        *self
            .by_producer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(0) += 1;
    }

    /// Per-producer full-channel counts, sorted by key.
    pub(crate) fn backpressure_by_producer(&self) -> Vec<(u64, u64)> {
        self.by_producer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Restore the counters from a checkpoint image.
    pub(crate) fn set_backpressure(&self, total: u64, by_producer: Vec<(u64, u64)>) {
        self.backpressure.store(total, Ordering::Relaxed);
        *self.by_producer.lock().unwrap_or_else(|e| e.into_inner()) =
            by_producer.into_iter().collect();
    }
}

/// The shared identity of one producer (and all clones of its handle).
struct ProducerCore {
    key: u64,
    /// Emission counter; the mutex makes `reserve seq → send` atomic so a
    /// failed `try_send` never burns a seq (a hole would stall the pump
    /// forever).
    emitted: Mutex<u64>,
    /// Event-ID allocator for the typed `insert` builders.
    minted: AtomicU64,
    /// Live handles sharing this producer; the last drop disconnects.
    live: AtomicU64,
    board: Arc<DisconnectBoard>,
}

/// Engine-side state of the channel ingress (created lazily by the first
/// [`Engine::channel_source`](crate::Engine::channel_source) call).
pub(crate) struct ChannelIngress {
    pub(crate) tx: SyncSender<IngressBatch>,
    pub(crate) rx: Receiver<IngressBatch>,
    pub(crate) board: Arc<DisconnectBoard>,
    pub(crate) reseq: Resequencer<IngressBatch>,
    pub(crate) next_key: u64,
    pub(crate) depth: usize,
    /// `(producer key, emission cursor)` of lanes a checkpoint restore
    /// left open, in ascending key order. The next
    /// [`Engine::channel_source`](crate::Engine::channel_source) calls
    /// reattach to these lanes (cursor intact) instead of minting fresh
    /// keys, so a restored topology resumes where the original left off.
    /// Transient: never part of a checkpoint image.
    pub(crate) resume_keys: std::collections::VecDeque<(u64, u64)>,
    /// Stall gauge feeding [`PumpProgress::waiting_on`] /
    /// [`PumpProgress::rounds_stalled`]: the producer the resequencer's
    /// canonical line was last blocked on, and for how many consecutive
    /// pump checks. Transient observability, never persisted.
    pub(crate) stalled_on: Option<u64>,
    pub(crate) stalled_rounds: u64,
}

impl ChannelIngress {
    pub(crate) fn new(depth: usize) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel(depth);
        ChannelIngress {
            tx,
            rx,
            board: Arc::new(DisconnectBoard::default()),
            reseq: Resequencer::new(),
            next_key: 1,
            depth,
            resume_keys: std::collections::VecDeque::new(),
            stalled_on: None,
            stalled_rounds: 0,
        }
    }
}

/// Progress of one [`Engine::pump`](crate::Engine::pump) call (or the
/// accumulated total of
/// [`Engine::run_pipelined`](crate::Engine::run_pipelined)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PumpProgress {
    /// Canonical rounds admitted (each ran one quiescence pass).
    pub rounds: u64,
    /// Batches admitted across those rounds.
    pub batches: u64,
    /// Messages inside those batches.
    pub messages: u64,
    /// Producers still open (able to emit) when the call returned.
    pub open_producers: usize,
    /// Batches buffered ahead of their canonical turn (producer skew).
    pub buffered_batches: usize,
    /// When the resequencer's canonical line is blocked — other
    /// producers' emissions are buffered behind a producer that has not
    /// emitted — the key of the awaited producer (`None` when nothing is
    /// blocked; an idle channel with no skew buffered is not a stall).
    /// Pure observability — admission behavior is unchanged.
    pub waiting_on: Option<u64>,
    /// Consecutive pump checks the line has been blocked on
    /// [`PumpProgress::waiting_on`] without admitting a round; resets to
    /// zero whenever the awaited producer emits (or the stall moves to a
    /// different producer, which restarts the count at 1).
    pub rounds_stalled: u64,
}

/// Per-shard ingress observability: what was staged onto the bounded
/// ingress, what the drains admitted into dataflows, and how often
/// admission hit the capacity bound. Surfaced by
/// [`Engine::ingress_stats`](crate::Engine::ingress_stats) /
/// [`Engine::shard_ingress_stats`](crate::Engine::shard_ingress_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Batches staged onto this shard's ingress queue.
    pub staged_batches: u64,
    /// Messages inside those batches.
    pub staged_messages: u64,
    /// Batches drained from the ingress into dataflows.
    pub admitted_batches: u64,
    /// Messages delivered by those drains.
    pub admitted_messages: u64,
    /// Times admission found this shard at capacity (blocking drains and
    /// `try_*` rejections both count).
    pub backpressure_events: u64,
}

impl IngressStats {
    /// Fold another shard's counters into this one.
    pub fn absorb(&mut self, other: &IngressStats) {
        self.staged_batches += other.staged_batches;
        self.staged_messages += other.staged_messages;
        self.admitted_batches += other.admitted_batches;
        self.admitted_messages += other.admitted_messages;
        self.backpressure_events += other.backpressure_events;
    }
}

/// A `Send + Clone` ingestion handle on one named input stream, with no
/// engine borrow.
///
/// Obtained from [`Engine::channel_source`](crate::Engine::channel_source).
/// The handle owns an `Arc`-shared snapshot of the event type's resolved
/// `(query, port)` routing and a sender onto the engine's bounded mpsc
/// ingress, so it can move to any thread and outlive every engine borrow.
/// Messages accumulate in a local staging batch through the same typed
/// builders as the borrowed [`SourceHandle`](crate::SourceHandle) and
/// cross the thread boundary on [`flush`](ChannelSource::flush)
/// (automatic every [`DEFAULT_AUTOFLUSH`](crate::DEFAULT_AUTOFLUSH)
/// staged messages, on drop, or manual). Flushed batches run when the
/// engine thread pumps ([`Engine::pump`](crate::Engine::pump) /
/// [`Engine::run_pipelined`](crate::Engine::run_pipelined)).
///
/// **Routing snapshot**: queries registered *after* the handle was opened
/// do not see its traffic (the copy-on-write routing table keeps the
/// handle's snapshot alive); open sources after registering queries.
///
/// **Shutdown**: dropping the handle flushes the staged batch and — once
/// the last clone is gone — disconnects the producer, letting
/// [`Engine::run_pipelined`](crate::Engine::run_pipelined) retire its
/// lane and return. [`ChannelSource::seal`] additionally stages `CTI(∞)`
/// first ("this stream is complete"). During a panic unwind the staged
/// batch is abandoned rather than risked against a full channel, but the
/// disconnect is still posted (through a side channel that never blocks),
/// so a crashing provider cannot hang the pump.
pub struct ChannelSource {
    event_type: Arc<str>,
    /// Payload arity of the event type, resolved at open time.
    arity: usize,
    /// Resolved `(shard, subscribers)` routing snapshot.
    subs: Arc<[(usize, SubscriberList)]>,
    tx: SyncSender<IngressBatch>,
    core: Arc<ProducerCore>,
    staged: MessageBatch,
    autoflush: usize,
    /// Channel capacity in batches (for backpressure error reports).
    depth: usize,
    /// Engine observability hub: channel-block timing + backpressure
    /// traces from the provider side.
    obs: Arc<ObsHub>,
}

impl ChannelSource {
    /// `emitted` is the starting emission cursor: 0 for a fresh producer,
    /// or the restored lane cursor when reattaching after
    /// [`Engine::restore`](crate::Engine::restore) (the next flush gets
    /// the seq the resequencer lane expects). The event-ID allocator
    /// always starts at 0 — a resumed producer replaying a tape should
    /// stage pre-minted events ([`ChannelSource::insert_event`] /
    /// [`ChannelSource::stage_batch`]) rather than re-minting.
    #[allow(clippy::too_many_arguments)] // crate-internal constructor; one call site
    pub(crate) fn new(
        event_type: Arc<str>,
        arity: usize,
        subs: Arc<[(usize, SubscriberList)]>,
        tx: SyncSender<IngressBatch>,
        key: u64,
        board: Arc<DisconnectBoard>,
        depth: usize,
        emitted: u64,
        obs: Arc<ObsHub>,
    ) -> Self {
        debug_assert!(key < (1 << (64 - CHANNEL_ID_SHIFT)), "key space exhausted");
        ChannelSource {
            event_type,
            arity,
            subs,
            tx,
            core: Arc::new(ProducerCore {
                key,
                emitted: Mutex::new(emitted),
                minted: AtomicU64::new(0),
                live: AtomicU64::new(1),
                board,
            }),
            staged: MessageBatch::new(),
            autoflush: crate::session::DEFAULT_AUTOFLUSH,
            depth,
            obs,
        }
    }

    /// The event type this source feeds.
    pub fn event_type(&self) -> &str {
        &self.event_type
    }

    /// The origin key stamped on every emission of this producer (shared
    /// by clones). Keys are assigned in
    /// [`channel_source`](crate::Engine::channel_source) call order.
    pub fn producer_key(&self) -> u64 {
        self.core.key
    }

    /// Number of `(query, port)` subscribers in the routing snapshot.
    pub fn subscriber_count(&self) -> usize {
        self.subs.iter().map(|(_, s)| s.len()).sum()
    }

    /// Messages currently staged locally (not yet flushed).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Auto-flush after `n` staged messages (clamped to at least 1).
    pub fn with_autoflush(mut self, n: usize) -> Self {
        self.autoflush = n.max(1);
        self
    }

    /// Disable auto-flush: the batch grows until an explicit flush, seal
    /// or drop.
    pub fn manual_flush(mut self) -> Self {
        self.autoflush = usize::MAX;
        self
    }

    /// Mint and stage a point event `[vs, vs+1)` with a fresh ID,
    /// validating the payload against the resolved schema. Returns the
    /// shared event so the provider can retract it later.
    ///
    /// IDs are drawn from the producer's own slice of the ID space
    /// (`key << 44 | n`), so concurrent providers can never collide and a
    /// given provider mints the same IDs on every run.
    pub fn insert(&mut self, vs: u64, fields: Vec<Value>) -> Result<Arc<Event>, EngineError> {
        self.insert_for(Interval::point(TimePoint::new(vs)), fields)
    }

    /// Mint and stage an event with an explicit validity interval.
    pub fn insert_for(
        &mut self,
        interval: Interval,
        fields: Vec<Value>,
    ) -> Result<Arc<Event>, EngineError> {
        crate::engine::validate_arity(&self.event_type, self.arity, fields.len())?;
        let n = self.core.minted.fetch_add(1, Ordering::Relaxed);
        let id = EventId((self.core.key << CHANNEL_ID_SHIFT) | n);
        let event = Arc::new(Event::primitive(id, interval, Payload::from_values(fields)));
        self.stage(Message::Insert(event.clone()));
        Ok(event)
    }

    /// Stage a pre-minted event (e.g. from a workload generator),
    /// validating its payload arity against the resolved schema.
    pub fn insert_event(&mut self, event: impl Into<Arc<Event>>) -> Result<(), EngineError> {
        let event = event.into();
        crate::engine::validate_arity(&self.event_type, self.arity, event.payload.len())?;
        self.stage(Message::Insert(event));
        Ok(())
    }

    /// Stage a retraction shortening `event`'s lifetime to `[Vs, new_end)`
    /// (`new_end == Vs` removes it entirely).
    pub fn retract(&mut self, event: impl Into<Arc<Event>>, new_end: TimePoint) {
        self.stage(Message::Retract(Retraction::new(event, new_end)));
    }

    /// Stage a current-time increment: a promise that every future
    /// message on this stream has `Sync >= t`.
    pub fn cti(&mut self, t: TimePoint) {
        self.stage(Message::Cti(t));
    }

    /// Stage a raw physical message (tape replays, disorder harnesses).
    /// No schema validation is applied.
    pub fn stage(&mut self, msg: Message) {
        self.staged.push(msg);
        if self.staged.len() >= self.autoflush {
            self.flush();
        }
    }

    /// Stage a whole batch (`Arc`-shared clones — payloads are never
    /// copied). The auto-flush bound holds mid-batch.
    pub fn stage_batch(&mut self, batch: &MessageBatch) {
        for m in batch {
            self.staged.push(m.clone());
            if self.staged.len() >= self.autoflush {
                self.flush();
            }
        }
    }

    /// Emit the staged batch onto the bounded channel, **blocking** while
    /// the channel is full (backpressure: the engine thread must pump).
    /// An empty staging batch is a no-op. If the engine no longer exists
    /// (its receiver was dropped), the batch is discarded — there is
    /// nothing left to feed.
    pub fn flush(&mut self) {
        let _ = self.emit(true);
    }

    /// [`flush`](ChannelSource::flush) with backpressure surfaced: if the
    /// bounded channel is full, nothing moves, the batch stays staged,
    /// and [`EngineError::IngressFull`]
    /// is returned (with `shard = 0` and capacities counted in *batches*
    /// — the channel bounds emissions, not messages). The caller decides
    /// whether to retry, shed load, or block.
    pub fn try_flush(&mut self) -> Result<(), EngineError> {
        self.emit(false)
    }

    /// Reserve the next emission seq under the `emitted` lock and send.
    ///
    /// The lock is held only across `try_send` (non-blocking), never
    /// across a blocking send: a rejected `try_send` must not burn a seq
    /// (a hole would stall the resequencer forever), while the blocking
    /// path reserves its seq eagerly and then waits *outside* the lock —
    /// so a sibling clone's `try_flush` stays non-blocking even while
    /// this flush is parked on a full channel. A reserved-but-in-flight
    /// seq is safe: the reserving handle is live until its send
    /// completes, so the disconnect (posted by the *last* handle) can
    /// never announce a seq that will not arrive.
    fn emit(&mut self, block: bool) -> Result<(), EngineError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let core = Arc::clone(&self.core);
        let mut emitted = core.emitted.lock().unwrap_or_else(|e| e.into_inner());
        let mut item = IngressBatch {
            key: core.key,
            seq: *emitted,
            event_type: self.event_type.clone(),
            subs: self.subs.clone(),
            batch: std::mem::take(&mut self.staged),
        };
        // First attempt is non-blocking under the lock either way — it
        // is also how a blocking flush detects (and counts) backpressure.
        match self.tx.try_send(item) {
            Ok(()) => {
                *emitted += 1;
                return Ok(());
            }
            Err(TrySendError::Disconnected(_)) => return Ok(()), // engine gone: discard
            Err(TrySendError::Full(full)) => {
                core.board.note_backpressure(core.key);
                self.obs
                    .trace(|| TraceEvent::ChannelBackpressure { producer: core.key });
                if !block {
                    let len = full.batch.len();
                    self.staged = full.batch;
                    return Err(EngineError::IngressFull {
                        event_type: self.event_type.to_string(),
                        shard: 0,
                        capacity: self.depth,
                        staged: self.depth,
                        batch: len,
                    });
                }
                item = full;
            }
        }
        // Blocking path: commit the seq, release the lock, then wait,
        // timing how long the full channel parks this producer.
        *emitted += 1;
        drop(emitted);
        let t0 = self.obs.now();
        let _ = self.tx.send(item);
        let blocked = self.obs.now().saturating_sub(t0);
        self.obs.with_timings(|t| t.channel_block.record(blocked));
        Ok(())
    }

    /// End this stream cleanly: stage `CTI(∞)` ("no more data will ever
    /// arrive here") and drop the handle, which flushes and disconnects.
    /// The pump drains the remaining staged work; subscriptions keep
    /// cursoring afterwards.
    ///
    /// `CTI(∞)` is a promise about the whole *stream*, so seal only the
    /// **last** handle feeding it: a sibling clone — or another
    /// channel source on the same event type — that keeps emitting
    /// afterwards breaks the guarantee operators finalized state on,
    /// exactly as it would through the borrowed-handle surface.
    pub fn seal(mut self) {
        self.cti(TimePoint::INFINITY);
        // Drop flushes and disconnects.
    }

    /// Abandon the session, handing back whatever was staged but not yet
    /// flushed (nothing is sent; the disconnect still happens on drop).
    /// This is the explicit-error-handling escape hatch: pair with
    /// [`try_flush`](ChannelSource::try_flush) to decide the batch's fate
    /// instead of trusting the drop-flush.
    pub fn into_inner(mut self) -> MessageBatch {
        std::mem::take(&mut self.staged)
    }
}

impl Clone for ChannelSource {
    /// Clones **share the producer origin**: the same key, emission
    /// counter and event-ID allocator (seqs stay gap-free however the
    /// clones interleave, and the producer disconnects only when the last
    /// clone drops). Emissions racing through sibling clones are admitted
    /// in whatever order they win the shared counter — deterministic only
    /// if the clones are externally synchronised. For the full
    /// order-insensitivity guarantee give each provider thread its own
    /// [`channel_source`](crate::Engine::channel_source).
    fn clone(&self) -> Self {
        self.core.live.fetch_add(1, Ordering::AcqRel);
        ChannelSource {
            event_type: self.event_type.clone(),
            arity: self.arity,
            subs: self.subs.clone(),
            tx: self.tx.clone(),
            core: Arc::clone(&self.core),
            staged: MessageBatch::new(),
            autoflush: self.autoflush,
            depth: self.depth,
            obs: Arc::clone(&self.obs),
        }
    }
}

impl std::fmt::Debug for ChannelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSource")
            .field("event_type", &self.event_type)
            .field("producer_key", &self.core.key)
            .field("arity", &self.arity)
            .field("subscribers", &self.subscriber_count())
            .field("staged", &self.staged.len())
            .finish_non_exhaustive()
    }
}

impl Drop for ChannelSource {
    /// Flush the staged batch (blocking — the pump will drain it), then
    /// disconnect the producer if this was its last live handle. During a
    /// panic unwind the staged data is abandoned instead of risking a
    /// block on a full channel, but the disconnect is still posted so the
    /// pump can retire the lane.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.flush();
        }
        if self.core.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            let emitted = *self.core.emitted.lock().unwrap_or_else(|e| e.into_inner());
            self.core.board.post(self.core.key, emitted);
        }
    }
}

/// Pump half: lives in [`Engine`] but implemented here to keep the whole
/// subsystem in one module.
impl Engine {
    /// Drain whatever the channel ingress holds right now and run every
    /// admitted round: one non-blocking pump step.
    ///
    /// A *round* is the canonical unit of admission — one emission from
    /// every producer whose turn it is, released in `(round, producer
    /// key)` order by the resequencer (see the module docs) and executed
    /// with **one quiescence pass per round** (serial or sharded, per
    /// [`EngineConfig::threads`](crate::EngineConfig::threads)). Because
    /// both the admission order and the pass structure are pure functions
    /// of the logical emissions, pumped execution is bit-identical to
    /// single-threaded ingestion of the same emissions at every
    /// consistency level.
    ///
    /// Returns how much was admitted plus the open-producer and skew
    /// gauges; `Ok` with all-zero counters when no channel source exists
    /// or nothing was ready. Errors with
    /// [`EngineError::Sealed`] after
    /// [`Engine::seal`](crate::Engine::seal) — in-flight channel traffic
    /// is unreachable once every input carries `CTI(∞)` — and with
    /// [`EngineError::ResequencerFull`] when the skew buffer hits
    /// [`EngineConfig::resequencer_capacity`](crate::EngineConfig::resequencer_capacity)
    /// while the canonical line is stalled on a silent producer.
    pub fn pump(&mut self) -> Result<PumpProgress, EngineError> {
        self.pump_inner(false)
    }

    /// Pump until every producer has disconnected and all of their
    /// emissions have run: the engine side of a pipelined topology
    /// (providers on their threads, this call on the engine thread).
    ///
    /// Blocks while producers are open but idle — drop (or
    /// [`seal`](ChannelSource::seal)) every [`ChannelSource`] to let this
    /// return; holding one on the calling thread while `run_pipelined`
    /// waits is the classic self-deadlock, named here so it is a
    /// documentation bug instead of a surprise. Returns the accumulated
    /// [`PumpProgress`]; an engine with no channel sources returns
    /// immediately.
    pub fn run_pipelined(&mut self) -> Result<PumpProgress, EngineError> {
        self.pump_inner(true)
    }

    fn pump_inner(&mut self, until_disconnected: bool) -> Result<PumpProgress, EngineError> {
        use cedr_streams::RoundStatus;
        if self.is_sealed() {
            return Err(EngineError::Sealed);
        }
        let mut progress = PumpProgress::default();
        if self.channel.is_none() {
            return Ok(progress);
        }
        let cap = self.config().resequencer_capacity;
        loop {
            let pass_t0 = self.obs.now();
            // Fold in disconnects (side channel) and everything the data
            // channel holds, in arrival order; the resequencer restores
            // canonical order.
            {
                let ch = self.channel.as_mut().expect("checked above");
                for (key, emitted) in ch.board.drain() {
                    ch.reseq.close(key, emitted);
                }
                // The skew buffer is bounded: stop pulling once it holds
                // `resequencer_capacity` emissions. Providers then block
                // on the (also bounded) channel, so a silent producer
                // stalls the line under a fixed memory ceiling instead of
                // letting the fast producers grow the buffer forever.
                while ch.reseq.buffered() < cap {
                    match ch.rx.try_recv() {
                        Ok(item) => {
                            let (key, seq) = (item.key, item.seq);
                            ch.reseq.accept(key, seq, item);
                        }
                        Err(_) => break,
                    }
                }
            }
            // Admit every ready round, one quiescence pass each.
            let rounds_before = progress.rounds;
            let (batches_before, messages_before) = (progress.batches, progress.messages);
            loop {
                let round = {
                    let ch = self.channel.as_mut().expect("checked above");
                    match ch.reseq.next_round() {
                        RoundStatus::Ready(round) => round,
                        RoundStatus::Pending { .. } | RoundStatus::Idle => break,
                    }
                };
                progress.rounds += 1;
                for (_, item) in round {
                    progress.batches += 1;
                    progress.messages += item.batch.len() as u64;
                    let IngressBatch {
                        event_type,
                        subs,
                        batch,
                        ..
                    } = item;
                    // Blocking admission never fails; with the pump
                    // draining every round, the shard ingress is near
                    // empty anyway.
                    let _ = self.admit_resolved(&event_type, batch, &subs, true);
                }
                self.run_to_quiescence();
            }
            // Cumulative pump totals (semantic counters — survive the
            // channel's teardown at seal and the error returns below) and
            // the pump_step histogram for passes that admitted something.
            self.channel_acct.rounds += progress.rounds - rounds_before;
            self.channel_acct.batches += progress.batches - batches_before;
            self.channel_acct.messages += progress.messages - messages_before;
            if progress.rounds > rounds_before {
                let nanos = self.obs.now().saturating_sub(pass_t0);
                self.obs.with_timings(|t| t.pump_step.record(nanos));
            }
            let (open, buffered, live) = {
                let ch = self.channel.as_ref().expect("checked above");
                (
                    ch.reseq.open_lanes(),
                    ch.reseq.buffered(),
                    ch.reseq.live_lanes(),
                )
            };
            progress.open_producers = open;
            progress.buffered_batches = buffered;
            // Stall observability: when the canonical line is blocked —
            // buffered skew is waiting behind a producer that has not
            // emitted — name that producer and count consecutive blocked
            // checks. `Pending` with nothing buffered is mere idleness,
            // not a stall. Re-polling `next_round` here is safe — the
            // admit loop above already drained every `Ready` round, so
            // the status can only be `Pending` or `Idle`.
            {
                let admitted_this_pass = progress.rounds > rounds_before;
                let ch = self.channel.as_mut().expect("checked above");
                match ch.reseq.next_round() {
                    RoundStatus::Pending { waiting_on } if ch.reseq.buffered() > 0 => {
                        if admitted_this_pass || ch.stalled_on != Some(waiting_on) {
                            ch.stalled_on = Some(waiting_on);
                            ch.stalled_rounds = 1;
                            // Trace once per stall episode, not per check.
                            let buffered = ch.reseq.buffered();
                            self.obs.trace(|| TraceEvent::ResequencerStall {
                                waiting_on,
                                buffered: buffered.min(u32::MAX as usize) as u32,
                            });
                        } else {
                            ch.stalled_rounds += 1;
                        }
                        progress.waiting_on = Some(waiting_on);
                        progress.rounds_stalled = ch.stalled_rounds;
                    }
                    _ => {
                        ch.stalled_on = None;
                        ch.stalled_rounds = 0;
                        progress.waiting_on = None;
                        progress.rounds_stalled = 0;
                    }
                }
            }
            // Every releasable round was admitted above, so a buffer still
            // at capacity means the line is stalled on a producer that has
            // not emitted — surface the bound as a typed error rather than
            // spinning (run_pipelined) or silently buffering on.
            if buffered >= cap {
                let ch = self.channel.as_mut().expect("checked above");
                if let RoundStatus::Pending { waiting_on } = ch.reseq.next_round() {
                    return Err(EngineError::ResequencerFull {
                        capacity: cap,
                        buffered,
                        waiting_on,
                    });
                }
            }
            if !until_disconnected || live == 0 {
                return Ok(progress);
            }
            // Block for more input. Data arrives on the channel; a
            // timeout falls through to re-poll the disconnect board
            // (which bypasses the channel so a retiring producer can
            // never be missed). The engine's own sender keeps the
            // channel alive, so a disconnect error is unreachable.
            let ch = self.channel.as_mut().expect("checked above");
            if let Ok(item) = ch.rx.recv_timeout(std::time::Duration::from_millis(5)) {
                let (key, seq) = (item.key, item.seq);
                ch.reseq.accept(key, seq, item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::engine::EngineConfig;
    use cedr_algebra::expr::Pred;
    use cedr_lang::catalog::FieldType;
    use cedr_runtime::ConsistencySpec;

    fn tick_engine(config: EngineConfig) -> (Engine, crate::QueryId) {
        let mut e = Engine::with_config(config);
        e.register_event_type("T", vec![("v", FieldType::Int)]);
        let plan = PlanBuilder::source("T").select(Pred::True).into_plan();
        let q = e
            .register_plan("q", plan, ConsistencySpec::middle())
            .unwrap();
        (e, q)
    }

    #[test]
    fn channel_source_feeds_a_pumping_engine() {
        let (mut e, q) = tick_engine(EngineConfig::serial());
        let mut src = e.channel_source("T").unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..50u64 {
                src.insert(i, vec![Value::Int(i as i64)]).unwrap();
            }
        });
        let progress = e.run_pipelined().unwrap();
        handle.join().unwrap();
        assert_eq!(progress.open_producers, 0);
        assert_eq!(progress.messages, 50);
        assert_eq!(e.collector(q).stats().inserts, 50);
    }

    #[test]
    fn channel_source_validates_schema_and_mints_keyed_ids() {
        let (mut e, _q) = tick_engine(EngineConfig::serial());
        let mut src = e.channel_source("T").unwrap();
        assert!(matches!(
            src.insert(0, vec![]),
            Err(EngineError::PayloadArity { .. })
        ));
        let ev = src.insert(3, vec![Value::Int(1)]).unwrap();
        assert_eq!(ev.id.0 >> CHANNEL_ID_SHIFT, src.producer_key());
        let ev2 = src.insert(4, vec![Value::Int(2)]).unwrap();
        assert_ne!(ev.id, ev2.id);
        drop(src);
        assert!(matches!(
            e.channel_source("NOPE"),
            Err(EngineError::UnknownEventType { .. })
        ));
    }

    #[test]
    fn seal_stages_cti_infinity() {
        let (mut e, q) = tick_engine(EngineConfig::serial());
        let mut src = e.channel_source("T").unwrap();
        src.insert(1, vec![Value::Int(1)]).unwrap();
        src.seal();
        e.run_pipelined().unwrap();
        assert_eq!(
            e.collector(q).max_cti(),
            Some(TimePoint::INFINITY),
            "seal() must carry CTI(∞) through the channel"
        );
    }

    #[test]
    fn sealed_engine_rejects_channel_ingestion_and_pump() {
        let (mut e, _q) = tick_engine(EngineConfig::serial());
        e.seal();
        assert!(matches!(e.channel_source("T"), Err(EngineError::Sealed)));
        assert!(matches!(e.pump(), Err(EngineError::Sealed)));
        assert!(matches!(e.run_pipelined(), Err(EngineError::Sealed)));
    }

    #[test]
    fn pump_without_channel_sources_is_a_cheap_no_op() {
        let (mut e, _q) = tick_engine(EngineConfig::serial());
        assert_eq!(e.pump().unwrap(), PumpProgress::default());
        assert_eq!(e.run_pipelined().unwrap(), PumpProgress::default());
    }

    #[test]
    fn try_flush_surfaces_channel_backpressure() {
        let (mut e, q) = tick_engine(EngineConfig::serial().with_channel_depth(2));
        let mut src = e.channel_source("T").unwrap().manual_flush();
        // Fill the channel: two emissions fit, the third is refused.
        for round in 0..3u64 {
            src.insert(round, vec![Value::Int(round as i64)]).unwrap();
            if round < 2 {
                src.try_flush().unwrap();
            }
        }
        let err = src.try_flush().unwrap_err();
        assert!(matches!(err, EngineError::IngressFull { .. }), "{err}");
        assert_eq!(src.staged_len(), 1, "failed try_flush must not lose data");
        assert!(
            e.ingress_stats().backpressure_events >= 1,
            "channel backpressure must show up in the ingress counters"
        );
        // Pumping makes room; the retry succeeds.
        e.pump().unwrap();
        src.try_flush().unwrap();
        drop(src);
        e.run_pipelined().unwrap();
        assert_eq!(e.collector(q).stats().inserts, 3);
    }

    #[test]
    fn try_flush_stays_nonblocking_while_a_sibling_clone_blocks() {
        // The emission lock must never be held across a blocking send: a
        // clone parked on a full channel cannot turn a sibling's
        // try_flush into a blocking call (before the fix this test hung).
        let (mut e, q) = tick_engine(EngineConfig::serial().with_channel_depth(1));
        let src = e.channel_source("T").unwrap();
        let mut a = src.clone().manual_flush();
        let mut b = src.clone().manual_flush();
        drop(src);
        a.insert(0, vec![Value::Int(0)]).unwrap();
        a.try_flush().unwrap(); // channel now full
        let blocked = std::thread::spawn(move || {
            a.insert(1, vec![Value::Int(1)]).unwrap();
            a.flush(); // parks on the full channel until the pump drains
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.insert(2, vec![Value::Int(2)]).unwrap();
        let err = b.try_flush().unwrap_err(); // immediate, not parked
        assert!(matches!(err, EngineError::IngressFull { .. }), "{err}");
        // Recovering the batch consumes (and thereby disconnects) b
        // without the blocking drop-flush; drain the rest and make sure
        // nothing was lost or duplicated.
        let held = b.into_inner();
        assert_eq!(held.len(), 1);
        e.run_pipelined().unwrap();
        blocked.join().unwrap();
        assert_eq!(e.collector(q).stats().inserts, 2, "seqs 0 and 1 ran");
    }

    #[test]
    fn clones_share_the_origin_and_disconnect_once() {
        let (mut e, q) = tick_engine(EngineConfig::serial());
        let src = e.channel_source("T").unwrap();
        let key = src.producer_key();
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let mut s = src.clone();
                assert_eq!(s.producer_key(), key);
                std::thread::spawn(move || {
                    for i in 0..10u64 {
                        s.insert(c * 100 + i, vec![Value::Int(i as i64)]).unwrap();
                        s.flush();
                    }
                })
            })
            .collect();
        drop(src);
        e.run_pipelined().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.collector(q).stats().inserts, 30);
    }

    #[test]
    fn into_inner_recovers_staged_messages_without_sending() {
        let (mut e, q) = tick_engine(EngineConfig::serial());
        let mut src = e.channel_source("T").unwrap().manual_flush();
        src.insert(1, vec![Value::Int(1)]).unwrap();
        src.insert(2, vec![Value::Int(2)]).unwrap();
        let staged = src.into_inner();
        assert_eq!(staged.len(), 2);
        e.run_pipelined().unwrap();
        assert_eq!(e.collector(q).stats().inserts, 0, "nothing was sent");
    }

    #[test]
    fn seal_unblocks_providers_stuck_on_a_full_channel() {
        // Shutdown liveness: a provider blocked in a blocking flush
        // against a full channel must unblock when the engine seals —
        // seal tears the channel down, turning the pending send (and all
        // later ones) into discards instead of stranding the thread.
        let (mut e, _q) = tick_engine(EngineConfig::serial().with_channel_depth(1));
        let mut src = e.channel_source("T").unwrap().manual_flush();
        // Fill the channel from this thread so the spawned flush blocks.
        src.insert(0, vec![Value::Int(0)]).unwrap();
        src.try_flush().unwrap();
        let handle = std::thread::spawn(move || {
            for i in 1..4u64 {
                src.insert(i, vec![Value::Int(i as i64)]).unwrap();
                src.flush(); // blocks on the depth-1 channel until seal
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        e.seal();
        handle
            .join()
            .expect("provider must not be stranded by seal");
    }

    #[test]
    fn silent_producer_trips_the_resequencer_bound() {
        // The skew buffer is bounded: a producer that opens a lane and
        // never emits stalls the canonical line, and once the fast
        // producers have buffered `resequencer_capacity` emissions the
        // pump must surface the typed error instead of buffering on.
        let (mut e, q) = tick_engine(EngineConfig::serial().with_resequencer_capacity(4));
        let silent = e.channel_source("T").unwrap();
        let mut fast = e.channel_source("T").unwrap();
        for i in 0..8u64 {
            fast.insert(i, vec![Value::Int(i as i64)]).unwrap();
            fast.flush();
        }
        let err = e.pump().unwrap_err();
        match err {
            EngineError::ResequencerFull {
                capacity,
                buffered,
                waiting_on,
            } => {
                assert_eq!(capacity, 4);
                assert_eq!(buffered, 4, "pull stops exactly at the bound");
                assert_eq!(waiting_on, silent.producer_key(), "names the stall");
            }
            other => panic!("expected ResequencerFull, got {other}"),
        }
        assert_eq!(e.collector(q).stats().inserts, 0, "line is stalled");
        // The error is a report, not a consumption: pumping again without
        // unblocking the line reproduces it losslessly.
        assert!(matches!(e.pump(), Err(EngineError::ResequencerFull { .. })));
        // Recovery: retiring the silent producer closes its lane, the
        // buffered rounds release, and the channel backlog drains — every
        // emission survives the stalled episode.
        drop(silent);
        drop(fast);
        e.run_pipelined().unwrap();
        assert_eq!(e.collector(q).stats().inserts, 8);
    }

    #[test]
    fn panicking_producer_still_disconnects() {
        let (mut e, q) = tick_engine(EngineConfig::serial());
        let mut src = e.channel_source("T").unwrap();
        let handle = std::thread::spawn(move || {
            src.insert(1, vec![Value::Int(1)]).unwrap();
            src.flush();
            src.insert(2, vec![Value::Int(2)]).unwrap();
            panic!("provider crashed");
        });
        assert!(handle.join().is_err());
        // The flushed emission ran; the staged one died with the thread;
        // and — the point — run_pipelined returns instead of hanging.
        e.run_pipelined().unwrap();
        assert_eq!(e.collector(q).stats().inserts, 1);
    }
}
