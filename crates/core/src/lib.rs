//! # cedr-core
//!
//! The public face of the CEDR reproduction: an [`engine::Engine`] that
//! registers standing queries (from CEDR query text or the programmatic
//! [`builder::PlanBuilder`]), routes provider streams to them, applies
//! per-query consistency specs, and exposes a **sessioned I/O surface**:
//! typed [`SourceHandle`] ingestion sessions with bounded-ingress
//! backpressure on the way in, incremental [`Subscription`] change-stream
//! cursors on the way out, plus a unified [`Engine::metrics`](engine::Engine::metrics)
//! telemetry snapshot. For
//! concurrent providers, [`ChannelSource`] is the `Send + Clone` sibling
//! of `SourceHandle`: producer threads feed a bounded channel while the
//! engine pumps ([`Engine::pump`](engine::Engine::pump) /
//! [`Engine::run_pipelined`](engine::Engine::run_pipelined)), with
//! multi-producer runs bit-identical to single-threaded ingestion — see
//! [`ingest`] for the "which handle do I want?" table.
//!
//! ```
//! use cedr_core::prelude::*;
//!
//! let mut engine = Engine::new();
//! engine.register_event_type("INSTALL", vec![("Machine_Id", FieldType::Str)]);
//! engine.register_event_type("SHUTDOWN", vec![("Machine_Id", FieldType::Str)]);
//! engine.register_event_type("RESTART", vec![("Machine_Id", FieldType::Str)]);
//! let q = engine
//!     .register_query(
//!         "EVENT Q WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours) \
//!          WHERE x.Machine_Id = y.Machine_Id",
//!         ConsistencySpec::middle(),
//!     )
//!     .unwrap();
//! let mut sub = engine.subscribe(q).unwrap();
//!
//! // Provider session: resolve the stream once, stage typed events.
//! let mut installs = engine.source("INSTALL").unwrap();
//! installs.insert(100, vec![Value::str("m1")]).unwrap();
//! drop(installs);
//! let mut shutdowns = engine.source("SHUTDOWN").unwrap();
//! shutdowns.insert(200, vec![Value::str("m1")]).unwrap();
//! drop(shutdowns);
//! engine.seal();
//!
//! // Consumer session: drain the insert/retract/CTI change stream.
//! let deltas = sub.poll(&mut engine);
//! assert_eq!(deltas.iter().filter(|d| d.is_data()).count(), 1);
//! assert_eq!(engine.collector(q).stats().inserts, 1);
//! ```

pub mod builder;
mod checkpoint;
pub mod engine;
pub mod ingest;
mod metrics;
pub mod session;

pub use builder::PlanBuilder;
pub use engine::{
    Engine, EngineConfig, EngineError, QueryId, DEFAULT_CHANNEL_DEPTH, DEFAULT_INGRESS_CAPACITY,
    DEFAULT_TRACE_CAPACITY,
};
pub use ingest::{ChannelSource, IngressStats, PumpProgress};
pub use session::{SourceHandle, Subscription, DEFAULT_AUTOFLUSH};

// Observability surface: [`Engine::metrics`] returns these `cedr-obs`
// types; re-export the ones applications and tests touch directly.
pub use cedr_obs::{
    validate_exposition, ManualClock, MetricsSnapshot, ObsClock, SemanticCounters, TraceEvent,
};

/// Convenience prelude for applications.
pub mod prelude {
    pub use crate::builder::PlanBuilder;
    pub use crate::engine::{Engine, EngineConfig, EngineError, QueryId};
    pub use crate::ingest::{ChannelSource, IngressStats, PumpProgress};
    pub use crate::session::{SourceHandle, Subscription};
    pub use cedr_algebra::expr::{CmpOp, Pred, Scalar};
    pub use cedr_algebra::pattern::{Consumption, ScMode, Selection};
    pub use cedr_algebra::relational::AggFunc;
    pub use cedr_lang::catalog::{Catalog, EventTypeDef, FieldType};
    pub use cedr_obs::{ManualClock, MetricsSnapshot, ObsClock, TraceEvent};
    pub use cedr_runtime::{ConsistencyLevel, ConsistencySpec};
    pub use cedr_streams::{
        Collector, DisorderConfig, Message, MessageBatch, OutputDelta, Retraction, StreamBuilder,
    };
    pub use cedr_temporal::prelude::*;
    pub use cedr_temporal::time::{dur, t};
}
