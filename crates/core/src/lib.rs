//! # cedr-core
//!
//! The public face of the CEDR reproduction: an [`engine::Engine`] that
//! registers standing queries (from CEDR query text or the programmatic
//! [`builder::PlanBuilder`]), routes provider streams to them, applies
//! per-query consistency specs, and exposes outputs as collectors plus the
//! Figure-8 runtime metrics.
//!
//! ```
//! use cedr_core::prelude::*;
//!
//! let mut engine = Engine::new();
//! engine.register_event_type("INSTALL", vec![("Machine_Id", FieldType::Str)]);
//! engine.register_event_type("SHUTDOWN", vec![("Machine_Id", FieldType::Str)]);
//! engine.register_event_type("RESTART", vec![("Machine_Id", FieldType::Str)]);
//! let q = engine
//!     .register_query(
//!         "EVENT Q WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours) \
//!          WHERE x.Machine_Id = y.Machine_Id",
//!         ConsistencySpec::middle(),
//!     )
//!     .unwrap();
//! let install = engine.event("INSTALL", 100, vec![Value::str("m1")]).unwrap();
//! engine.push_insert("INSTALL", install).unwrap();
//! let shutdown = engine.event("SHUTDOWN", 200, vec![Value::str("m1")]).unwrap();
//! engine.push_insert("SHUTDOWN", shutdown).unwrap();
//! engine.seal();
//! assert_eq!(engine.output(q).stats().inserts, 1);
//! ```

pub mod builder;
pub mod engine;

pub use builder::PlanBuilder;
pub use engine::{Engine, EngineConfig, EngineError, QueryId};

/// Convenience prelude for applications.
pub mod prelude {
    pub use crate::builder::PlanBuilder;
    pub use crate::engine::{Engine, EngineConfig, EngineError, QueryId};
    pub use cedr_algebra::expr::{CmpOp, Pred, Scalar};
    pub use cedr_algebra::pattern::{Consumption, ScMode, Selection};
    pub use cedr_algebra::relational::AggFunc;
    pub use cedr_lang::catalog::{Catalog, EventTypeDef, FieldType};
    pub use cedr_runtime::{ConsistencyLevel, ConsistencySpec};
    pub use cedr_streams::{
        Collector, DisorderConfig, Message, MessageBatch, Retraction, StreamBuilder,
    };
    pub use cedr_temporal::prelude::*;
    pub use cedr_temporal::time::{dur, t};
}
