//! Sessioned I/O: typed ingestion handles and incremental output
//! subscriptions.
//!
//! The paper's CEDR vision is a *standing-query server*: providers feed
//! named streams continuously, consumers observe each query's consistent,
//! repairing output stream. This module is that surface:
//!
//! * [`SourceHandle`] — a provider session on one input stream. Opened
//!   with [`Engine::source`], it resolves the event type and its shard
//!   routing **once**, stages messages in a local [`MessageBatch`]
//!   through typed builders, and flushes against the engine's bounded
//!   per-shard ingress with blocking ([`SourceHandle::flush`]) or
//!   backpressure-surfacing ([`SourceHandle::try_flush`]) semantics.
//! * [`Subscription`] — a consumer cursor over a query's append-only
//!   [`OutputDelta`] log. Opened with [`Engine::subscribe`], each
//!   [`Subscription::poll`] drains staged work and returns exactly the
//!   insert/retract/CTI deltas appended since the previous poll, in an
//!   order bit-identical to the collector's stamped tape at every
//!   consistency level and thread count.

use crate::engine::{Engine, EngineError, QueryId, SubscriberList};
use cedr_streams::{Message, MessageBatch, OutputDelta, Retraction};
use cedr_temporal::{Event, Interval, TimePoint, Value};
use std::sync::Arc;

/// Default number of staged messages at which a [`SourceHandle`]
/// auto-flushes. Small enough to bound session-local memory, large enough
/// that shell and scheduler overhead amortise across the run (see
/// `OpStats::mean_batch_len`).
pub const DEFAULT_AUTOFLUSH: usize = 512;

/// A typed ingestion session on one named input stream.
///
/// Obtained from [`Engine::source`]. The handle holds the engine borrow
/// for its lifetime, which is what makes "resolve once" sound: routing
/// cannot change and the engine cannot seal while a session is open.
/// Messages accumulate in a local staging batch and move to the engine's
/// bounded ingress on [`flush`](SourceHandle::flush) (automatic every
/// [`DEFAULT_AUTOFLUSH`] staged messages, on drop, or manual). Staged
/// batches are drained into the dataflows by
/// [`Engine::run_to_quiescence`] — or by the engine itself when a full
/// ingress queue exerts backpressure on a blocking flush.
///
/// ```
/// use cedr_core::prelude::*;
///
/// let mut engine = Engine::new();
/// engine.register_event_type("LOGIN", vec![("user", FieldType::Str)]);
/// let mut login = engine.source("LOGIN").unwrap();
/// let ev = login.insert(100, vec![Value::str("ada")]).unwrap();
/// login.retract(ev.clone(), t(100)); // never mind
/// login.cti(t(200));
/// drop(login); // flushes the staged batch
/// engine.run_to_quiescence();
/// ```
pub struct SourceHandle<'e> {
    engine: &'e mut Engine,
    event_type: String,
    /// Payload arity of the event type, resolved at open time.
    arity: usize,
    /// Per-shard `(shard, subscribers)` routing, resolved at open time.
    subs: Vec<(usize, SubscriberList)>,
    staged: MessageBatch,
    autoflush: usize,
}

impl<'e> SourceHandle<'e> {
    pub(crate) fn new(
        engine: &'e mut Engine,
        event_type: String,
        arity: usize,
        subs: Vec<(usize, SubscriberList)>,
    ) -> Self {
        SourceHandle {
            engine,
            event_type,
            arity,
            subs,
            staged: MessageBatch::new(),
            autoflush: DEFAULT_AUTOFLUSH,
        }
    }

    /// The event type this session feeds.
    pub fn event_type(&self) -> &str {
        &self.event_type
    }

    /// Number of `(query, port)` subscribers the resolved routing fans
    /// out to.
    pub fn subscriber_count(&self) -> usize {
        self.subs.iter().map(|(_, s)| s.len()).sum()
    }

    /// Messages currently staged locally (not yet flushed).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Auto-flush after `n` staged messages (clamped to at least 1).
    pub fn with_autoflush(mut self, n: usize) -> Self {
        self.autoflush = n.max(1);
        self
    }

    /// Disable auto-flush entirely: the batch grows until an explicit
    /// [`flush`](SourceHandle::flush)/[`try_flush`](SourceHandle::try_flush)
    /// or drop.
    pub fn manual_flush(mut self) -> Self {
        self.autoflush = usize::MAX;
        self
    }

    /// Mint and stage a point event `[vs, vs+1)` with a fresh ID,
    /// validating the payload against the resolved schema. Returns the
    /// (shared) event so the provider can retract it later.
    pub fn insert(&mut self, vs: u64, fields: Vec<Value>) -> Result<Arc<Event>, EngineError> {
        self.insert_for(Interval::point(TimePoint::new(vs)), fields)
    }

    /// Mint and stage an event with an explicit validity interval.
    pub fn insert_for(
        &mut self,
        interval: Interval,
        fields: Vec<Value>,
    ) -> Result<Arc<Event>, EngineError> {
        crate::engine::validate_arity(&self.event_type, self.arity, fields.len())?;
        let event = self.engine.mint_event(interval, fields);
        self.stage(Message::Insert(event.clone()));
        Ok(event)
    }

    /// Stage a pre-minted event (e.g. from a workload generator),
    /// validating its payload arity against the resolved schema.
    pub fn insert_event(&mut self, event: impl Into<Arc<Event>>) -> Result<(), EngineError> {
        let event = event.into();
        crate::engine::validate_arity(&self.event_type, self.arity, event.payload.len())?;
        self.stage(Message::Insert(event));
        Ok(())
    }

    /// Stage a retraction shortening `event`'s lifetime to
    /// `[Vs, new_end)` (`new_end == Vs` removes it entirely). Accepts the
    /// shared event an [`insert`](SourceHandle::insert) returned (clone
    /// the `Arc` — a refcount bump) or an owned [`Event`].
    pub fn retract(&mut self, event: impl Into<Arc<Event>>, new_end: TimePoint) {
        self.stage(Message::Retract(Retraction::new(event, new_end)));
    }

    /// Stage a current-time increment: a promise that every future
    /// message on this stream has `Sync >= t`.
    pub fn cti(&mut self, t: TimePoint) {
        self.stage(Message::Cti(t));
    }

    /// Stage a raw physical message (tape replays, disorder harnesses).
    /// No schema validation is applied.
    pub fn stage(&mut self, msg: Message) {
        self.staged.push(msg);
        if self.staged.len() >= self.autoflush {
            self.flush();
        }
    }

    /// Stage a whole batch (an `Arc`-shared clone per message — payloads
    /// are never copied). The auto-flush bound holds mid-batch: local
    /// staging never grows past the threshold, however large the input.
    pub fn stage_batch(&mut self, batch: &MessageBatch) {
        for m in batch {
            self.staged.push(m.clone());
            if self.staged.len() >= self.autoflush {
                self.flush();
            }
        }
    }

    /// Move the staged batch to the engine's ingress queues, draining the
    /// engine first if a target shard's bounded ingress lacks room
    /// (backpressure by blocking). Never fails; an empty staging batch is
    /// a no-op. The staged work runs at the next
    /// [`Engine::run_to_quiescence`] (or [`Subscription::poll`]).
    pub fn flush(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.staged);
        // Blocking admission cannot fail today; should a future error
        // path appear, swallowing it here keeps `flush` (and the drop
        // that routes through it) panic-free by construction.
        let _ = self
            .engine
            .admit_resolved(&self.event_type, batch, &self.subs, true);
    }

    /// [`flush`](SourceHandle::flush) with backpressure surfaced: if the
    /// staged batch does not fit a target shard's bounded ingress,
    /// nothing moves, the batch stays staged, and
    /// [`EngineError::IngressFull`] is returned — the caller decides
    /// whether to drain, retry, or shed load.
    pub fn try_flush(&mut self) -> Result<(), EngineError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        // Capacity pre-check, then move: the success path never copies
        // the staged batch, and after a passed check the admission below
        // cannot trigger a backpressure drain.
        if let Err(full) =
            self.engine
                .check_capacity(&self.event_type, self.staged.len(), &self.subs)
        {
            if let EngineError::IngressFull { shard, .. } = full {
                self.engine.note_backpressure(shard);
            }
            return Err(full);
        }
        let batch = std::mem::take(&mut self.staged);
        self.engine
            .admit_resolved(&self.event_type, batch, &self.subs, false)
            .expect("admission cannot fail after a passed capacity check");
        Ok(())
    }

    /// Deliver one message immediately — flush anything staged, then run
    /// the historical per-message cascade (minus its per-call lookups):
    /// the message reaches every subscribing dataflow and the graphs run
    /// to quiescence before this returns. This is the latency-first mode;
    /// prefer staging + flush when the caller holds a run of messages.
    pub fn send(&mut self, msg: Message) {
        if !self.staged.is_empty() {
            self.flush();
        }
        self.engine.send_resolved(&self.subs, msg);
    }

    /// Flush and run the engine to quiescence: everything staged through
    /// this handle (and any other staged ingress) is processed before
    /// this returns. Equivalent to dropping the handle and calling
    /// [`Engine::run_to_quiescence`], without ending the session.
    pub fn sync(&mut self) {
        self.flush();
        self.engine.run_to_quiescence();
    }

    /// End the session **without** the drop-flush, handing back whatever
    /// was staged. This is the explicit-error-handling escape hatch: a
    /// caller that wants to decide the batch's fate (retry elsewhere,
    /// log, shed) pairs [`try_flush`](SourceHandle::try_flush) with
    /// `into_inner` instead of trusting the implicit flush on drop.
    pub fn into_inner(mut self) -> MessageBatch {
        std::mem::take(&mut self.staged)
        // Drop sees an empty staging batch: a no-op.
    }
}

impl std::fmt::Debug for SourceHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceHandle")
            .field("event_type", &self.event_type)
            .field("arity", &self.arity)
            .field("subscribers", &self.subscriber_count())
            .field("staged", &self.staged.len())
            .finish_non_exhaustive()
    }
}

impl Drop for SourceHandle<'_> {
    /// Closing a session flushes its staged batch (the drain itself still
    /// happens at the next `run_to_quiescence`/poll).
    ///
    /// The drop-flush is strictly best-effort and **never panics**: a
    /// drop during a panic unwind abandons the staged batch rather than
    /// run the scheduler (a second panic there would abort the process),
    /// and [`flush`](SourceHandle::flush) itself swallows rather than
    /// unwraps. Callers who want staged-data errors surfaced use
    /// [`try_flush`](SourceHandle::try_flush) /
    /// [`into_inner`](SourceHandle::into_inner) before dropping.
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        self.flush();
    }
}

/// An incremental consumer cursor over one query's output change stream.
///
/// Obtained from [`Engine::subscribe`]. The subscription owns only a
/// position into the query collector's append-only delta log, so it can
/// outlive borrows of the engine, interleave freely with ingestion
/// sessions, and coexist with any number of other subscriptions on the
/// same query. Draining never re-reads state: each poll returns a slice
/// of the log — zero copies, `Arc`-shared events.
///
/// ```
/// use cedr_core::prelude::*;
///
/// let mut engine = Engine::new();
/// engine.register_event_type("TICK", vec![("v", FieldType::Int)]);
/// let plan = PlanBuilder::source("TICK").select(Pred::True).into_plan();
/// let q = engine
///     .register_plan("ticks", plan, ConsistencySpec::middle())
///     .unwrap();
/// let mut sub = engine.subscribe(q).unwrap();
/// let mut src = engine.source("TICK").unwrap();
/// src.insert(7, vec![Value::Int(1)]).unwrap();
/// drop(src);
/// for delta in sub.poll(&mut engine) {
///     println!("{delta:?}"); // @0 +insert ...
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Subscription {
    query: QueryId,
    cursor: usize,
}

impl Subscription {
    pub(crate) fn new(query: QueryId) -> Self {
        Subscription { query, cursor: 0 }
    }

    /// The query this subscription observes.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// The cursor position: number of deltas consumed so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Drain everything new: run the engine to quiescence (consumption
    /// drives the scheduler over any staged ingress), then return the
    /// deltas appended since the last drain and advance the cursor past
    /// them.
    pub fn poll<'e>(&mut self, engine: &'e mut Engine) -> &'e [OutputDelta] {
        engine.run_to_quiescence();
        self.drain_ready(engine)
    }

    /// Drain what is already computed, without scheduling — the read-only
    /// variant of [`poll`](Subscription::poll) for when the engine is
    /// shared or known to be quiescent.
    pub fn drain_ready<'e>(&mut self, engine: &'e Engine) -> &'e [OutputDelta] {
        let log = engine.collector(self.query).delta_log();
        let start = self.cursor.min(log.len());
        self.cursor = log.len();
        &log[start..]
    }

    /// Drain at most `max` ready deltas (read-only; pair with
    /// [`poll`](Subscription::poll) or [`Engine::run_to_quiescence`] to
    /// schedule first). Supports consuming a long repair log in slices
    /// and resuming mid-stream — the cursor advances exactly past what
    /// was returned.
    pub fn take<'e>(&mut self, engine: &'e Engine, max: usize) -> &'e [OutputDelta] {
        let log = engine.collector(self.query).delta_log();
        let start = self.cursor.min(log.len());
        let end = (start + max).min(log.len());
        self.cursor = end;
        &log[start..end]
    }

    /// Attach this cursor to a [`MetricsSnapshot`](cedr_obs::MetricsSnapshot)
    /// under `label`, so [`render_report`](cedr_obs::MetricsSnapshot::render_report)
    /// and [`render_prometheus`](cedr_obs::MetricsSnapshot::render_prometheus)
    /// show its position and lag against the query's delta log. Cursors
    /// live with consumers, not the engine, so [`Engine::metrics`] cannot
    /// see them — observation is opt-in per subscription.
    pub fn observe(&self, snap: &mut cedr_obs::MetricsSnapshot, label: &str) {
        snap.record_subscription(self.query.0, label, self.cursor as u64);
    }

    /// Deltas ready to drain without scheduling.
    pub fn pending(&self, engine: &Engine) -> usize {
        engine
            .collector(self.query)
            .delta_log()
            .len()
            .saturating_sub(self.cursor)
    }

    /// Callback-sink drain: run to quiescence, hand every new delta to
    /// `f` in order, and return how many were consumed. The cursor
    /// advances past each delta only *after* its callback returns, so a
    /// panicking sink loses nothing: on unwind the cursor still points at
    /// the failed delta and a later drain re-delivers it (at-least-once).
    pub fn for_each<F: FnMut(&OutputDelta)>(&mut self, engine: &mut Engine, mut f: F) -> usize {
        engine.run_to_quiescence();
        let log = engine.collector(self.query).delta_log();
        let end = log.len();
        let mut consumed = 0;
        while self.cursor < end {
            f(&log[self.cursor]);
            self.cursor += 1;
            consumed += 1;
        }
        consumed
    }

    /// Skip past everything already logged without observing it: the next
    /// poll returns only deltas appended after this call.
    pub fn skip_to_end(&mut self, engine: &Engine) {
        self.cursor = engine.collector(self.query).delta_log().len();
    }
}
