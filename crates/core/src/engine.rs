//! The CEDR engine: standing-query registration, shared-source routing,
//! batch ingestion and per-query consistency.
//!
//! Applications "specify consistency requirements on a per query basis"
//! (Section 1): each registered query gets its own operator instances
//! running at its own ⟨M, B⟩ spectrum point, fed from shared named input
//! streams.
//!
//! Ingestion is built for fan-out at scale. The engine maintains a
//! **routing table** from event-type name to the `(query, source port)`
//! pairs consuming it, refreshed at registration time, so [`Engine::push`]
//! is a table lookup plus one `Arc`-shared [`Message`] clone per
//! subscriber — never a payload deep-copy, regardless of how many standing
//! queries share a stream. [`Engine::push_batch`] hands whole
//! [`MessageBatch`]es to each subscriber's batch-at-a-time dataflow, and
//! the [`Engine::enqueue_batch`]/[`Engine::run_to_quiescence`] pair lets
//! callers stage several per-type batches (e.g. one per provider stream)
//! and then drain every query's dataflow once, maximising the runs the
//! schedulers can amortise.

use cedr_lang::catalog::{Catalog, EventTypeDef, FieldType};
use cedr_lang::{compile, lower, optimize, LangError, LogicalOp, LoweredPlan};
use cedr_runtime::{ConsistencySpec, OpStats};
use cedr_streams::{Collector, Message, MessageBatch, Retraction};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint, Value};
use std::collections::HashMap;
use std::fmt;

/// Handle to a registered standing query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    Lang(LangError),
    UnknownEventType(String),
    UnknownQuery(QueryId),
    PayloadArity {
        event_type: String,
        expected: usize,
        got: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lang(e) => write!(f, "{e}"),
            EngineError::UnknownEventType(t) => write!(f, "unknown event type '{t}'"),
            EngineError::UnknownQuery(q) => write!(f, "unknown query {q:?}"),
            EngineError::PayloadArity {
                event_type,
                expected,
                got,
            } => write!(
                f,
                "payload arity mismatch for {event_type}: expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LangError> for EngineError {
    fn from(e: LangError) -> Self {
        EngineError::Lang(e)
    }
}

struct RunningQuery {
    name: String,
    plan: LoweredPlan,
    spec: ConsistencySpec,
    explain: String,
}

/// The CEDR engine.
pub struct Engine {
    catalog: Catalog,
    queries: Vec<RunningQuery>,
    /// Event-type name → `(query index, source port)` subscribers. Rebuilt
    /// incrementally at registration; makes `push` a lookup instead of a
    /// scan over every standing query.
    routing: HashMap<String, Vec<(usize, usize)>>,
    next_event_id: u64,
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            catalog: Catalog::new(),
            queries: Vec::new(),
            routing: HashMap::new(),
            next_event_id: 1,
        }
    }

    /// Record the sources a freshly-registered query consumes.
    fn index_query(&mut self, q: usize) {
        for (port, ty) in self.queries[q].plan.source_types.iter().enumerate() {
            self.routing.entry(ty.clone()).or_default().push((q, port));
        }
    }

    /// Register a primitive event type.
    pub fn register_event_type(&mut self, name: &str, fields: Vec<(&str, FieldType)>) {
        self.catalog.register(EventTypeDef::new(name, fields));
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a query from CEDR query text.
    pub fn register_query(
        &mut self,
        text: &str,
        spec: ConsistencySpec,
    ) -> Result<QueryId, EngineError> {
        let compiled = compile(text, &self.catalog, spec)?;
        self.queries.push(RunningQuery {
            name: compiled.name,
            plan: compiled.plan,
            spec,
            explain: compiled.explain,
        });
        let q = self.queries.len() - 1;
        self.index_query(q);
        Ok(QueryId(q))
    }

    /// Register a programmatic plan (see [`crate::builder::PlanBuilder`]).
    pub fn register_plan(
        &mut self,
        name: &str,
        root: LogicalOp,
        spec: ConsistencySpec,
    ) -> Result<QueryId, EngineError> {
        let optimized = optimize(root);
        let explain = format!("{optimized}");
        let plan = lower(&optimized, &self.catalog, spec)?;
        self.queries.push(RunningQuery {
            name: name.to_string(),
            plan,
            spec,
            explain,
        });
        let q = self.queries.len() - 1;
        self.index_query(q);
        Ok(QueryId(q))
    }

    /// Mint a point event `[vs, vs+1)` of a registered type with a fresh ID.
    pub fn event(
        &mut self,
        event_type: &str,
        vs: u64,
        payload: Vec<Value>,
    ) -> Result<Event, EngineError> {
        self.event_with_interval(event_type, Interval::point(TimePoint::new(vs)), payload)
    }

    /// Mint an event with an explicit validity interval.
    pub fn event_with_interval(
        &mut self,
        event_type: &str,
        interval: Interval,
        payload: Vec<Value>,
    ) -> Result<Event, EngineError> {
        let def = self
            .catalog
            .lookup(event_type)
            .map_err(|_| EngineError::UnknownEventType(event_type.to_string()))?;
        if def.fields.len() != payload.len() {
            return Err(EngineError::PayloadArity {
                event_type: event_type.to_string(),
                expected: def.fields.len(),
                got: payload.len(),
            });
        }
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        Ok(Event::primitive(
            id,
            interval,
            Payload::from_values(payload),
        ))
    }

    /// Push a message on the named input stream; every query consuming the
    /// type receives it via the routing table. Fan-out is one `Arc`-shared
    /// `Message` clone per subscriber — the event payload is never
    /// deep-copied, no matter how many queries share the stream.
    pub fn push(&mut self, event_type: &str, msg: Message) -> Result<(), EngineError> {
        if !self.catalog.contains(event_type) {
            return Err(EngineError::UnknownEventType(event_type.to_string()));
        }
        if let Some(subs) = self.routing.get(event_type) {
            for &(q, port) in subs {
                self.queries[q].plan.dataflow.push_source(port, msg.clone());
            }
        }
        Ok(())
    }

    /// Push a whole batch on the named input stream. Every subscriber
    /// receives the same `Arc`-backed batch and processes it through its
    /// batch-at-a-time dataflow scheduler in amortised runs.
    pub fn push_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        self.enqueue_batch(event_type, batch)?;
        self.run_to_quiescence();
        Ok(())
    }

    /// Stage a batch on the named input stream without draining the
    /// dataflows. Pair with [`Engine::run_to_quiescence`] to ingest several
    /// per-type batches (one per provider stream, say) and then run every
    /// query's graph once over the union.
    pub fn enqueue_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        if !self.catalog.contains(event_type) {
            return Err(EngineError::UnknownEventType(event_type.to_string()));
        }
        if let Some(subs) = self.routing.get(event_type) {
            for &(q, port) in subs {
                self.queries[q]
                    .plan
                    .dataflow
                    .enqueue_source_batch(port, batch);
            }
        }
        Ok(())
    }

    /// Drain every registered query's dataflow to quiescence.
    pub fn run_to_quiescence(&mut self) {
        for q in &mut self.queries {
            q.plan.dataflow.run_to_quiescence();
        }
    }

    /// Push an insert.
    pub fn push_insert(&mut self, event_type: &str, event: Event) -> Result<(), EngineError> {
        self.push(event_type, Message::insert_event(event))
    }

    /// Push a retraction shortening `event` to `[Vs, new_end)`.
    pub fn push_retract(
        &mut self,
        event_type: &str,
        event: Event,
        new_end: TimePoint,
    ) -> Result<(), EngineError> {
        self.push(
            event_type,
            Message::Retract(Retraction::new(event, new_end)),
        )
    }

    /// Declare an occurrence-time guarantee on one input stream.
    pub fn push_cti(&mut self, event_type: &str, t: TimePoint) -> Result<(), EngineError> {
        self.push(event_type, Message::Cti(t))
    }

    /// Declare a guarantee on *all* registered event types (a provider-wide
    /// sync point). Staged through the batch path: every input's CTI is
    /// enqueued first, then all dataflows drain once.
    pub fn advance_all(&mut self, t: TimePoint) {
        let types: Vec<String> = self
            .catalog
            .type_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut cti = MessageBatch::new();
        cti.push_cti(t);
        for ty in types {
            let _ = self.enqueue_batch(&ty, &cti);
        }
        self.run_to_quiescence();
    }

    /// Seal every input with `CTI(∞)` — no more data will arrive.
    pub fn seal(&mut self) {
        self.advance_all(TimePoint::INFINITY);
    }

    /// The output collector of a query.
    pub fn output(&self, q: QueryId) -> &Collector {
        let rq = &self.queries[q.0];
        rq.plan.dataflow.collector(rq.plan.sink)
    }

    /// Plan-wide runtime statistics of a query (Figure-8 observables).
    pub fn stats(&self, q: QueryId) -> OpStats {
        self.queries[q.0].plan.dataflow.total_stats()
    }

    /// Per-node statistics `(name, stats)` in plan order.
    pub fn node_stats(&self, q: QueryId) -> Vec<(&'static str, OpStats)> {
        let df = &self.queries[q.0].plan.dataflow;
        (0..df.node_count())
            .map(|n| (df.node_name(n), df.stats(n).clone()))
            .collect()
    }

    /// The optimized logical plan, rendered.
    pub fn explain(&self, q: QueryId) -> &str {
        &self.queries[q.0].explain
    }

    pub fn query_name(&self, q: QueryId) -> &str {
        &self.queries[q.0].name
    }

    pub fn query_spec(&self, q: QueryId) -> ConsistencySpec {
        self.queries[q.0].spec
    }

    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::time::t;

    fn machine_engine() -> Engine {
        let mut e = Engine::new();
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        e
    }

    #[test]
    fn register_and_run_text_query() {
        let mut e = machine_engine();
        let q = e
            .register_query(cedr_lang::parser::CIDR07_EXAMPLE, ConsistencySpec::middle())
            .unwrap();
        assert_eq!(e.query_name(q), "CIDR07_Example");
        assert!(e.explain(q).contains("Unless"));

        let i = e.event("INSTALL", 100, vec![Value::str("m1")]).unwrap();
        e.push_insert("INSTALL", i).unwrap();
        let s = e.event("SHUTDOWN", 200, vec![Value::str("m1")]).unwrap();
        e.push_insert("SHUTDOWN", s).unwrap();
        e.seal();
        assert_eq!(e.output(q).stats().inserts, 1);
    }

    #[test]
    fn multiple_queries_share_inputs_independently() {
        let mut e = machine_engine();
        let q_strong = e
            .register_query(
                "EVENT A WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::strong(),
            )
            .unwrap();
        let q_middle = e
            .register_query(
                "EVENT B WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::middle(),
            )
            .unwrap();
        let i = e.event("INSTALL", 10, vec![Value::str("m")]).unwrap();
        e.push_insert("INSTALL", i).unwrap();
        let s = e.event("SHUTDOWN", 20, vec![Value::str("m")]).unwrap();
        e.push_insert("SHUTDOWN", s).unwrap();
        e.seal();
        assert_eq!(e.output(q_strong).stats().inserts, 1);
        assert_eq!(e.output(q_middle).stats().inserts, 1);
        assert_eq!(
            e.query_spec(q_strong).level(),
            cedr_runtime::ConsistencyLevel::Strong
        );
    }

    #[test]
    fn event_minting_validates() {
        let mut e = machine_engine();
        assert!(matches!(
            e.event("NOPE", 0, vec![]),
            Err(EngineError::UnknownEventType(_))
        ));
        assert!(matches!(
            e.event("INSTALL", 0, vec![]),
            Err(EngineError::PayloadArity { .. })
        ));
        let ev1 = e.event("INSTALL", 0, vec![Value::str("m")]).unwrap();
        let ev2 = e.event("INSTALL", 0, vec![Value::str("m")]).unwrap();
        assert_ne!(ev1.id, ev2.id, "fresh IDs");
    }

    #[test]
    fn push_to_unknown_type_fails() {
        let mut e = machine_engine();
        assert!(e.push_cti("NOPE", t(5)).is_err());
    }
}
