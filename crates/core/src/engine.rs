//! The CEDR engine: standing-query registration, shared-source routing,
//! sessioned I/O and per-query consistency.
//!
//! Applications "specify consistency requirements on a per query basis"
//! (Section 1): each registered query gets its own operator instances
//! running at its own ⟨M, B⟩ spectrum point, fed from shared named input
//! streams.
//!
//! # Sessioned I/O
//!
//! The engine is a *standing-query server*: providers feed streams in
//! continuously and consumers observe a consistent, repairing output
//! stream. Both directions are **sessions**:
//!
//! * **Ingestion** — [`Engine::source`] opens a typed
//!   [`SourceHandle`] on one input stream. The
//!   handle resolves the event type and its shard routing **once**,
//!   offers typed `insert`/`retract`/`cti` builders, stages a local
//!   [`MessageBatch`], and flushes it against a **bounded per-shard
//!   ingress queue** ([`EngineConfig::ingress_capacity`]). The blocking
//!   [`flush`](crate::SourceHandle::flush) drains the engine when the
//!   ingress is full; [`try_flush`](crate::SourceHandle::try_flush)
//!   surfaces [`EngineError::IngressFull`] instead — real backpressure,
//!   never unbounded growth.
//! * **Concurrent ingestion** — [`Engine::channel_source`] opens a
//!   [`ChannelSource`]: the same typed staging surface as a
//!   `SourceHandle`, but `Send + Clone` with **no engine borrow**, so
//!   provider threads feed a bounded mpsc ingress while the engine
//!   thread interleaves channel drains with quiescence passes via
//!   [`Engine::pump`] / [`Engine::run_pipelined`]. See the
//!   [`crate::ingest`] module docs for the **"which handle do I want?"**
//!   table and the order-insensitivity guarantee (multi-producer runs
//!   are bit-identical to single-threaded ingestion of the same
//!   emissions at every consistency level).
//! * **Consumption** — [`Engine::subscribe`] opens a
//!   [`Subscription`] cursoring the query
//!   collector's append-only [`OutputDelta`](cedr_streams::OutputDelta)
//!   log. Polling drains staged work and returns exactly the
//!   insert/retract/CTI deltas appended since the last poll —
//!   bit-identical to the collector's stamped tape at every consistency
//!   level and thread count — instead of re-reading whole output tables.
//!
//! # Migration (string-keyed shims → sessions)
//!
//! The historical fire-and-forget surface still works but is deprecated:
//!
//! | old (deprecated)                  | new                                       |
//! |-----------------------------------|-------------------------------------------|
//! | `engine.push_insert(ty, ev)?`     | `engine.source(ty)?.insert(at, fields)?`  |
//! | `engine.push_retract(ty, ev, e)?` | `handle.retract(&ev, e)`                  |
//! | `engine.push_cti(ty, t)?`         | `handle.cti(t)`                           |
//! | `engine.push(ty, msg)?`           | `handle.send(msg)` (or `stage` + `flush`) |
//! | `engine.push_batch(ty, &b)?`      | `handle.stage_batch(&b); handle.flush()`  |
//! | `engine.output(q)`                | `engine.collector(q)`; incrementally: `engine.subscribe(q)?` |
//!
//! One handle per burst amortises resolution over every message staged
//! through it; the shims open a throwaway session per call and are
//! therefore never faster than the handles they wrap.
//!
//! # Sharding and threading
//!
//! Ingestion is built for fan-out at scale. The engine's event-type
//! routing table is **sharded**: queries are assigned round-robin to
//! [`EngineConfig::threads`] shards at registration, and each shard owns
//! its slice of the event-type → `(query, source port)` table plus its own
//! bounded ingress queue. Staging is per-shard table lookups (or none at
//! all, through a resolved handle) plus one `Arc`-shared [`MessageBatch`]
//! clone per shard — never a payload deep-copy, regardless of how many
//! standing queries share a stream. The
//! [`Engine::enqueue_batch`]/[`Engine::run_to_quiescence`] pair lets
//! callers stage several per-type batches (e.g. one per provider stream)
//! and then drain every query's dataflow once, maximising the runs the
//! schedulers can amortise.
//!
//! With `threads > 1`, [`Engine::run_to_quiescence`] drains the shards on
//! scoped worker threads — each worker owns its shard's ingress queue and
//! queries outright, so the hot path takes **no global lock** (routing is
//! resolved at staging time, and shard state is disjoint by construction).
//! Every query's dataflow still sees its staged batches in exactly the
//! enqueue order, so threaded and serial drains produce bit-identical
//! outputs at every consistency level; queries are independent dataflows,
//! which makes the deterministic merge argument of
//! [`cedr_runtime::scheduler`] trivial at this layer.
//!
//! # Durability
//!
//! [`Engine::checkpoint`] serializes the **complete engine image** at a
//! quiescent round boundary — per-operator state across every operator
//! family (stateless boundary/alignment state, group-aggregate tables,
//! join indexes, sequence/negation state), the channel pump's
//! resequencer (buffered emissions and per-producer cursors), each
//! query's collector (history tables, stamped tape, subscription delta
//! log), the sharded routing table, the engine configuration and round
//! counters — into a versioned, length-prefixed binary image (see
//! [`cedr_durable`]) whose manifest carries the format version, the
//! round number, a configuration hash and a content checksum.
//! [`Engine::restore`] validates the whole image (framing, checksums,
//! format version, configuration hash, section inventory) **before**
//! mutating anything, then rebuilds an identically configured engine —
//! one with the same event types and queries registered in the same
//! order — into the exact state the checkpointed engine held. Recovery
//! is *invisible at the tape level*: replaying the remaining emissions
//! into the restored engine produces stamped tapes, subscription deltas
//! and output CTIs **bit-identical** to the run that never failed, at
//! every consistency level, thread count and fusion/compilation mode
//! (`tests/recovery.rs` pins this). A corrupt, truncated or
//! version-mismatched image fails with a typed
//! [`EngineError::CheckpointCorrupt`] naming the offending section and
//! leaves the engine untouched; [`Engine::seal`] after a restore behaves
//! exactly as on an engine that was never checkpointed. Channel
//! producers reattach by calling [`Engine::channel_source`] in the same
//! order as the original run: restored open lanes are handed back,
//! emission cursors intact, before fresh producer keys are minted.
//! Subscriptions are plain positions into the restored delta logs, so a
//! consumer can resume its cursor ([`crate::Subscription::position`])
//! unchanged.
//!
//! # Observability
//!
//! [`Engine::metrics`] returns one unified
//! [`MetricsSnapshot`](cedr_obs::MetricsSnapshot): per-query and per-node
//! operator counters, per-shard ingress counters, channel pump and
//! resequencer state (including per-producer backpressure attribution),
//! checkpoint/restore accounting, the latency histograms and the trace
//! ring occupancy. Render it with
//! [`render_prometheus`](cedr_obs::MetricsSnapshot::render_prometheus)
//! (text exposition format 0.0.4) or
//! [`render_report`](cedr_obs::MetricsSnapshot::render_report) (a human
//! dashboard).
//!
//! Metrics fall into three classes (see [`cedr_obs::snapshot`]):
//! **semantic counters** ([`MetricsSnapshot::semantic`](cedr_obs::MetricsSnapshot::semantic))
//! are bit-identical across `CEDR_THREADS`, `CEDR_FUSE` and
//! `CEDR_COMPILE` modes for the same logical workload
//! (`tests/metrics_determinism.rs` pins this); **execution counters**
//! are exact for a fixed configuration but mode-dependent (a fused graph
//! has fewer nodes, each thread count shards staging differently); and
//! **timing histograms** read wall-clock through the
//! [`ObsClock`](cedr_obs::ObsClock) seam — swap in a
//! [`ManualClock`](cedr_obs::ManualClock) via [`Engine::set_obs_clock`]
//! for deterministic tests. None of this state is ever serialized into
//! checkpoint images, and none of it feeds back into scheduling.
//!
//! Structured tracing is off by default ([`EngineConfig::trace_capacity`]
//! `= 0`: every hook is one branch); enable it per engine with
//! [`EngineConfig::with_trace_capacity`] or globally with `CEDR_TRACE`
//! (`1`/`on` → a [`DEFAULT_TRACE_CAPACITY`]-event ring, any other number
//! → that capacity). [`Engine::trace_events`] returns the buffered
//! window of [`TraceEvent`]s — round start/end,
//! shard and worker drains, operator runs, backpressure hits,
//! resequencer stalls, checkpoint/restore, seal — oldest first.

use crate::ingest::{ChannelIngress, ChannelSource, IngressStats};
use crate::session::{SourceHandle, Subscription};
use cedr_lang::catalog::{Catalog, EventTypeDef, FieldType};
use cedr_lang::{
    compile_from_env, compile_with, fuse_from_env, lower_with, optimize, LangError, LogicalOp,
    LoweredPlan,
};
use cedr_obs::{CheckpointCounters, ObsHub, TraceEvent};
use cedr_runtime::{ConsistencySpec, OpStats};
use cedr_streams::{Collector, Message, MessageBatch, Retraction};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Handle to a registered standing query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// Engine errors.
///
/// Marked `#[non_exhaustive]`: future PRs may add variants (as this one
/// added [`EngineError::IngressFull`] and [`EngineError::Sealed`]) without
/// breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    Lang(LangError),
    /// The named event type was never registered. Carries the names that
    /// *are* registered, so the message can point at the likely typo.
    UnknownEventType {
        name: String,
        registered: Vec<String>,
    },
    UnknownQuery(QueryId),
    PayloadArity {
        event_type: String,
        expected: usize,
        got: usize,
    },
    /// A bounded ingress has no room for the batch being staged. Returned
    /// only by the `try_*` admission paths
    /// ([`crate::SourceHandle::try_flush`], [`Engine::try_enqueue_batch`],
    /// [`crate::ChannelSource::try_flush`]); the blocking paths exert
    /// backpressure instead of failing. This is the signal to drain
    /// ([`Engine::run_to_quiescence`] / [`Engine::pump`]) or slow down.
    ///
    /// For the per-shard ingress, `capacity`/`staged`/`batch` count
    /// *messages* and `shard` names the full shard. For a channel source
    /// the bounded resource is the mpsc channel itself: `shard` is 0 and
    /// `capacity`/`staged` count staged *emissions* (batches), per
    /// [`EngineConfig::channel_depth`].
    IngressFull {
        event_type: String,
        shard: usize,
        capacity: usize,
        staged: usize,
        batch: usize,
    },
    /// The pump's resequencer skew buffer is at
    /// [`EngineConfig::resequencer_capacity`] and the canonical line is
    /// stalled: producer `waiting_on` owes the next round its emission,
    /// so nothing buffered can be released and nothing more will be
    /// drained from the channel. Returned by [`Engine::pump`] /
    /// [`Engine::run_pipelined`]. Recovery: get the named producer to
    /// emit, drop/[`seal`](crate::ChannelSource::seal) it (its disconnect
    /// releases the line on the next pump), or configure a larger buffer.
    ResequencerFull {
        capacity: usize,
        buffered: usize,
        /// Producer key (see [`crate::ChannelSource::producer_key`]) of
        /// the lane the next round is waiting on.
        waiting_on: u64,
    },
    /// The engine was sealed ([`Engine::seal`]): every input already
    /// carries `CTI(∞)`, so no further ingestion is possible.
    Sealed,
    /// [`Engine::checkpoint`] was called away from a quiescent round
    /// boundary: staged ingress, undelivered dataflow queues or pending
    /// shell work would be lost by a boundary image. Drain first
    /// ([`Engine::run_to_quiescence`] / [`Engine::pump`]).
    NotQuiescent {
        detail: String,
    },
    /// [`Engine::restore`] rejected a checkpoint image, naming the
    /// offending section (`"header"`, `"manifest"`, `"engine"`,
    /// `"channel"` or a `"query:…"` section). The engine is only mutated
    /// once the whole image has been validated, so a corrupt, truncated
    /// or mismatched image leaves it exactly as it was.
    CheckpointCorrupt {
        section: String,
        detail: String,
    },
    /// An I/O failure while writing ([`Engine::checkpoint`]) or reading
    /// ([`Engine::restore`]) a checkpoint image.
    CheckpointIo(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lang(e) => write!(f, "{e}"),
            EngineError::UnknownEventType { name, registered } => {
                if registered.is_empty() {
                    write!(f, "unknown event type '{name}' (no types registered)")
                } else {
                    write!(
                        f,
                        "unknown event type '{name}' (registered: {})",
                        registered.join(", ")
                    )
                }
            }
            EngineError::UnknownQuery(q) => write!(f, "unknown query {q:?}"),
            EngineError::PayloadArity {
                event_type,
                expected,
                got,
            } => write!(
                f,
                "payload arity mismatch for {event_type}: expected {expected}, got {got}"
            ),
            EngineError::IngressFull {
                event_type,
                shard,
                capacity,
                staged,
                batch,
            } => write!(
                f,
                "ingress full for '{event_type}': shard {shard} holds {staged}/{capacity} \
                 staged messages, batch of {batch} does not fit; drain with \
                 run_to_quiescence() or use the blocking flush"
            ),
            EngineError::ResequencerFull {
                capacity,
                buffered,
                waiting_on,
            } => write!(
                f,
                "resequencer skew buffer full: {buffered}/{capacity} emissions buffered while \
                 waiting on producer {waiting_on}; make it emit, drop/seal it, or raise \
                 resequencer_capacity"
            ),
            EngineError::Sealed => write!(
                f,
                "engine is sealed (CTI ∞ broadcast); no further ingestion is possible"
            ),
            EngineError::NotQuiescent { detail } => write!(
                f,
                "checkpoint requires a quiescent round boundary: {detail}; drain with \
                 run_to_quiescence() or pump() first"
            ),
            EngineError::CheckpointCorrupt { section, detail } => {
                write!(
                    f,
                    "checkpoint image rejected at section '{section}': {detail}"
                )
            }
            EngineError::CheckpointIo(e) => write!(f, "checkpoint I/O failure: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LangError> for EngineError {
    fn from(e: LangError) -> Self {
        EngineError::Lang(e)
    }
}

pub(crate) struct RunningQuery {
    pub(crate) name: String,
    pub(crate) plan: LoweredPlan,
    pub(crate) spec: ConsistencySpec,
    pub(crate) explain: String,
}

/// Default bound on staged messages per routing shard (see
/// [`EngineConfig::ingress_capacity`]).
pub const DEFAULT_INGRESS_CAPACITY: usize = 65_536;

/// Default bound on in-flight channel-source emissions (see
/// [`EngineConfig::channel_depth`]).
pub const DEFAULT_CHANNEL_DEPTH: usize = 1_024;

/// Default bound on messages buffered inside the pump's resequencer (see
/// [`EngineConfig::resequencer_capacity`]).
pub const DEFAULT_RESEQUENCER_CAPACITY: usize = 16_384;

/// Trace-ring capacity used when tracing is enabled without an explicit
/// size (`CEDR_TRACE=1`; see [`EngineConfig::trace_capacity`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 4_096;

/// Execution configuration of an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::run_to_quiescence`]; also the number
    /// of routing-table shards. `1` = fully serial.
    pub threads: usize,
    /// Bound on *staged* messages per routing shard: admission fails
    /// ([`EngineError::IngressFull`], on the `try_*` paths) or drains the
    /// engine (on the blocking paths) once a shard's ingress queue holds
    /// this many messages. This is what keeps a fast provider from growing
    /// the staging queues without bound. A single batch larger than the
    /// capacity is admitted alone into an empty shard (it could never fit
    /// otherwise), so the bound is `capacity + one oversized batch` in the
    /// worst case.
    pub ingress_capacity: usize,
    /// Bound on in-flight [`ChannelSource`] emissions (whole staged
    /// batches, not messages): the capacity of the mpsc channel between
    /// provider threads and the pump. A full channel blocks
    /// [`ChannelSource::flush`](crate::ChannelSource::flush) and rejects
    /// [`try_flush`](crate::ChannelSource::try_flush) with
    /// [`EngineError::IngressFull`] — backpressure on providers that
    /// outrun the pump.
    pub channel_depth: usize,
    /// Bound on emissions buffered inside the pump's **resequencer** — the
    /// skew buffer that holds a fast producer's rounds while a slow
    /// producer's earlier round is still missing. Without a bound, one
    /// silent producer would let every other producer grow this buffer
    /// indefinitely. When the buffer is at capacity and no round is ready,
    /// [`Engine::pump`] stops draining the channel and returns
    /// [`EngineError::ResequencerFull`] naming the producers it is waiting
    /// on; providers keep blocking on the (also bounded) channel in the
    /// meantime, so memory stays bounded end to end.
    pub resequencer_capacity: usize,
    /// Run the plan-time **fusion pass** when registering queries: maximal
    /// chains of adjacent stateless operators collapse into single
    /// `FusedStatelessOp` nodes (collector output is bit-identical either
    /// way; see `cedr_runtime::fused`). Defaults to the `CEDR_FUSE`
    /// environment switch — set `CEDR_FUSE=0` to run every engine unfused,
    /// however its config was built — and can be overridden per engine
    /// with [`EngineConfig::with_fuse`].
    pub fuse: bool,
    /// Compile fused chains into **column kernels** at registration:
    /// select/project payload trees become closures sweeping whole payload
    /// columns per delivery run instead of interpreting the stage IR per
    /// message (collector output is bit-identical either way; see
    /// `cedr_runtime::fused`). Irrelevant when `fuse` is off. Defaults to
    /// the `CEDR_COMPILE` environment switch — set `CEDR_COMPILE=0` to
    /// interpret everywhere — and can be overridden per engine with
    /// [`EngineConfig::with_compile_kernels`].
    pub compile_kernels: bool,
    /// Capacity of the structured trace ring (events), `0` = tracing off
    /// (every trace hook is a single branch and no ring is allocated).
    /// Defaults to the `CEDR_TRACE` environment switch — unset or `0`
    /// disables, `1`/`on` enables a [`DEFAULT_TRACE_CAPACITY`]-event
    /// ring, any other number is used as the capacity — and can be
    /// overridden per engine with [`EngineConfig::with_trace_capacity`].
    /// Pure observability: it is deliberately **excluded from the
    /// checkpoint configuration hash**, so an image taken with tracing
    /// off restores into an engine with tracing on (and vice versa).
    pub trace_capacity: usize,
}

/// The `CEDR_TRACE` environment switch (see
/// [`EngineConfig::trace_capacity`]).
fn trace_capacity_from_env() -> usize {
    match std::env::var("CEDR_TRACE") {
        Err(_) => 0,
        Ok(v) => match v.trim() {
            "" | "0" | "off" => 0,
            "1" | "on" => DEFAULT_TRACE_CAPACITY,
            other => other.parse().unwrap_or(DEFAULT_TRACE_CAPACITY),
        },
    }
}

impl EngineConfig {
    /// Single-threaded execution (one shard, serial drain). Fusion
    /// follows the `CEDR_FUSE` environment switch, like every constructor.
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            ingress_capacity: DEFAULT_INGRESS_CAPACITY,
            channel_depth: DEFAULT_CHANNEL_DEPTH,
            resequencer_capacity: DEFAULT_RESEQUENCER_CAPACITY,
            fuse: fuse_from_env(),
            compile_kernels: compile_from_env(),
            trace_capacity: trace_capacity_from_env(),
        }
    }

    /// `threads` workers / routing shards (clamped to at least 1).
    pub fn threaded(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
            ..EngineConfig::serial()
        }
    }

    /// Same configuration with a different per-shard ingress bound
    /// (clamped to at least 1 message).
    pub fn with_ingress_capacity(self, capacity: usize) -> Self {
        EngineConfig {
            ingress_capacity: capacity.max(1),
            ..self
        }
    }

    /// Same configuration with a different channel-source emission bound
    /// (clamped to at least 1 batch).
    pub fn with_channel_depth(self, depth: usize) -> Self {
        EngineConfig {
            channel_depth: depth.max(1),
            ..self
        }
    }

    /// Same configuration with a different resequencer skew-buffer bound
    /// (clamped to at least 1 emission).
    pub fn with_resequencer_capacity(self, capacity: usize) -> Self {
        EngineConfig {
            resequencer_capacity: capacity.max(1),
            ..self
        }
    }

    /// Same configuration with a different trace-ring capacity (`0`
    /// disables tracing; overrides the `CEDR_TRACE` environment default).
    pub fn with_trace_capacity(self, capacity: usize) -> Self {
        EngineConfig {
            trace_capacity: capacity,
            ..self
        }
    }

    /// Same configuration with the fusion pass explicitly on or off
    /// (overrides the `CEDR_FUSE` environment default).
    pub fn with_fuse(self, fuse: bool) -> Self {
        EngineConfig { fuse, ..self }
    }

    /// Same configuration with the fused-chain kernel compile explicitly
    /// on or off (overrides the `CEDR_COMPILE` environment default).
    pub fn with_compile_kernels(self, compile_kernels: bool) -> Self {
        EngineConfig {
            compile_kernels,
            ..self
        }
    }

    /// Read `CEDR_THREADS`, `CEDR_INGRESS_CAPACITY`, `CEDR_CHANNEL_DEPTH`,
    /// `CEDR_RESEQ_CAPACITY`, `CEDR_FUSE`, `CEDR_COMPILE` and `CEDR_TRACE`
    /// from the environment (defaults: 1 thread,
    /// [`DEFAULT_INGRESS_CAPACITY`], [`DEFAULT_CHANNEL_DEPTH`],
    /// [`DEFAULT_RESEQUENCER_CAPACITY`], fusion on, kernel compile on,
    /// tracing off). `CEDR_THREADS`, `CEDR_FUSE=0` and `CEDR_COMPILE=0`
    /// are the knobs the CI matrix turns to run the whole test suite
    /// serial/threaded, fused/unfused and compiled/interpreted — outputs
    /// (and every semantic counter, see [`Engine::metrics`]) are
    /// bit-identical every way.
    pub fn from_env() -> Self {
        let parse = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
        };
        EngineConfig {
            threads: parse("CEDR_THREADS").unwrap_or(1),
            ingress_capacity: parse("CEDR_INGRESS_CAPACITY").unwrap_or(DEFAULT_INGRESS_CAPACITY),
            channel_depth: parse("CEDR_CHANNEL_DEPTH").unwrap_or(DEFAULT_CHANNEL_DEPTH),
            resequencer_capacity: parse("CEDR_RESEQ_CAPACITY")
                .unwrap_or(DEFAULT_RESEQUENCER_CAPACITY),
            fuse: fuse_from_env(),
            compile_kernels: compile_from_env(),
            trace_capacity: trace_capacity_from_env(),
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

/// The `(query index, source port)` subscribers of one event type within
/// one shard, shared behind `Arc` so that resolved [`SourceHandle`]s and
/// staged ingress entries alias the routing table instead of copying it.
pub(crate) type SubscriberList = Arc<Vec<(usize, usize)>>;

/// The schema check every ingestion surface applies — engine minting,
/// borrowed handles and channel sources share this single definition so
/// a validation change can never drift between them.
pub(crate) fn validate_arity(
    event_type: &str,
    expected: usize,
    got: usize,
) -> Result<(), EngineError> {
    if got != expected {
        return Err(EngineError::PayloadArity {
            event_type: event_type.to_string(),
            expected,
            got,
        });
    }
    Ok(())
}

/// One slice of the sharded routing table: the queries assigned to one
/// worker, their event-type subscriptions, and their staged ingress.
#[derive(Default)]
pub(crate) struct EngineShard {
    /// Event-type name → subscribers whose query lives in this shard.
    pub(crate) routing: HashMap<String, SubscriberList>,
    /// Staged batches awaiting the next drain, in enqueue order, each with
    /// the `(query, port)` subscribers it fans out to (one shared batch
    /// clone per shard, not per subscriber).
    pub(crate) ingress: Vec<(MessageBatch, SubscriberList)>,
    /// Total messages across `ingress` — the quantity bounded by
    /// [`EngineConfig::ingress_capacity`].
    pub(crate) staged_msgs: usize,
    /// Staged/admitted/backpressure counters for this shard's ingress.
    pub(crate) stats: IngressStats,
}

/// Channel-pump accounting that must outlive the [`ChannelIngress`]
/// itself: admission totals accumulate across pump calls, and the
/// backpressure counters of a torn-down channel are retired here at
/// [`Engine::seal`] so the metrics stay monotone. Serialized in the
/// checkpoint `engine` section (the totals are semantic counters).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ChannelAccounting {
    /// Cumulative rounds / batches / messages admitted through the pump.
    pub(crate) rounds: u64,
    pub(crate) batches: u64,
    pub(crate) messages: u64,
    /// Full-channel backpressure folded out of the channel at seal:
    /// total, and the per-producer attribution (sorted by key).
    pub(crate) retired_backpressure: u64,
    pub(crate) retired_by_producer: Vec<(u64, u64)>,
    /// Whether a channel ingress ever existed — keeps the channel block
    /// of [`Engine::metrics`] present after seal tears the channel down.
    pub(crate) seen: bool,
}

impl ChannelAccounting {
    /// Fold a retiring channel's per-producer backpressure counters in.
    pub(crate) fn retire(&mut self, total: u64, by_producer: Vec<(u64, u64)>) {
        self.retired_backpressure += total;
        for (key, n) in by_producer {
            match self
                .retired_by_producer
                .binary_search_by_key(&key, |&(k, _)| k)
            {
                Ok(i) => self.retired_by_producer[i].1 += n,
                Err(i) => self.retired_by_producer.insert(i, (key, n)),
            }
        }
    }
}

/// The CEDR engine.
pub struct Engine {
    pub(crate) catalog: Catalog,
    pub(crate) queries: Vec<RunningQuery>,
    /// Routing shards; query `q` lives in shard `shard_of_query[q]`.
    /// Rebuilt incrementally at registration; makes `push` lookups instead
    /// of a scan over every standing query.
    pub(crate) shards: Vec<EngineShard>,
    pub(crate) shard_of_query: Vec<usize>,
    pub(crate) config: EngineConfig,
    pub(crate) next_event_id: u64,
    /// Quiescence passes completed — the engine's round counter, stamped
    /// into checkpoint manifests ([`Engine::checkpoint`]).
    pub(crate) rounds_completed: u64,
    /// Set by [`Engine::seal`]: every input carries `CTI(∞)`, ingestion is
    /// over. Sealing is idempotent; ingestion afterwards is a typed error.
    pub(crate) sealed: bool,
    /// Channel-source ingress (mpsc + resequencer), created lazily by the
    /// first [`Engine::channel_source`] call; drained by [`Engine::pump`].
    pub(crate) channel: Option<ChannelIngress>,
    /// Pump admission totals + retired channel backpressure (outlives the
    /// channel; see [`ChannelAccounting`]).
    pub(crate) channel_acct: ChannelAccounting,
    /// Shared observability hub: clock seam, latency histograms, optional
    /// trace ring. Threaded into every dataflow at registration. Pure
    /// observability — never serialized, never read by scheduling.
    pub(crate) obs: Arc<ObsHub>,
    /// Checkpoint/restore accounting for [`Engine::metrics`] (counts this
    /// process's activity; deliberately not part of checkpoint images).
    pub(crate) ckpt: CheckpointCounters,
    /// Clock reading at the first staged admission since the last drain —
    /// the start point of the ingestion→delta latency histogram.
    pub(crate) round_open_at: Option<u64>,
}

impl Engine {
    /// An engine configured from the environment
    /// ([`EngineConfig::from_env`]; serial unless `CEDR_THREADS` is set).
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::from_env())
    }

    /// An engine with an explicit execution configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let n = config.threads.max(1);
        Engine {
            catalog: Catalog::new(),
            queries: Vec::new(),
            shards: (0..n).map(|_| EngineShard::default()).collect(),
            shard_of_query: Vec::new(),
            config,
            next_event_id: 1,
            rounds_completed: 0,
            sealed: false,
            channel: None,
            channel_acct: ChannelAccounting::default(),
            obs: Arc::new(ObsHub::new(config.trace_capacity)),
            ckpt: CheckpointCounters::default(),
            round_open_at: None,
        }
    }

    /// Quiescence passes completed so far — the round counter stamped
    /// into checkpoint manifests.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// The active execution configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of routing-table shards (== configured threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Record the sources a freshly-registered query consumes in its
    /// shard's routing table. Queries are spread round-robin, which keeps
    /// shard loads balanced for homogeneous standing queries.
    fn index_query(&mut self, q: usize) {
        let shard = q % self.shards.len();
        self.shard_of_query.push(shard);
        for (port, ty) in self.queries[q].plan.source_types.iter().enumerate() {
            let subs = self.shards[shard].routing.entry(ty.clone()).or_default();
            // Copy-on-write: batches already staged (and handles already
            // resolved) keep routing as of their staging time.
            Arc::make_mut(subs).push((q, port));
        }
    }

    /// Register a primitive event type.
    pub fn register_event_type(&mut self, name: &str, fields: Vec<(&str, FieldType)>) {
        self.catalog.register(EventTypeDef::new(name, fields));
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a query from CEDR query text.
    pub fn register_query(
        &mut self,
        text: &str,
        spec: ConsistencySpec,
    ) -> Result<QueryId, EngineError> {
        let compiled = compile_with(
            text,
            &self.catalog,
            spec,
            self.config.fuse,
            self.config.compile_kernels,
        )?;
        self.queries.push(RunningQuery {
            name: compiled.name,
            plan: compiled.plan,
            spec,
            explain: compiled.explain,
        });
        let q = self.queries.len() - 1;
        self.index_query(q);
        self.queries[q]
            .plan
            .dataflow
            .set_obs(Arc::clone(&self.obs), q as u16);
        Ok(QueryId(q))
    }

    /// Register a programmatic plan (see [`crate::builder::PlanBuilder`]).
    pub fn register_plan(
        &mut self,
        name: &str,
        root: LogicalOp,
        spec: ConsistencySpec,
    ) -> Result<QueryId, EngineError> {
        let optimized = optimize(root);
        let plan = lower_with(
            &optimized,
            &self.catalog,
            spec,
            self.config.fuse,
            self.config.compile_kernels,
        )?;
        let explain = format!("{optimized}\n{}", plan.describe_fusion());
        self.queries.push(RunningQuery {
            name: name.to_string(),
            plan,
            spec,
            explain,
        });
        let q = self.queries.len() - 1;
        self.index_query(q);
        self.queries[q]
            .plan
            .dataflow
            .set_obs(Arc::clone(&self.obs), q as u16);
        Ok(QueryId(q))
    }

    /// Mint a point event `[vs, vs+1)` of a registered type with a fresh ID.
    pub fn event(
        &mut self,
        event_type: &str,
        vs: u64,
        payload: Vec<Value>,
    ) -> Result<Event, EngineError> {
        self.event_with_interval(event_type, Interval::point(TimePoint::new(vs)), payload)
    }

    /// Mint an event with an explicit validity interval.
    pub fn event_with_interval(
        &mut self,
        event_type: &str,
        interval: Interval,
        payload: Vec<Value>,
    ) -> Result<Event, EngineError> {
        let def = match self.catalog.lookup(event_type) {
            Ok(def) => def,
            Err(_) => return Err(self.unknown_type(event_type)),
        };
        validate_arity(event_type, def.fields.len(), payload.len())?;
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        Ok(Event::primitive(
            id,
            interval,
            Payload::from_values(payload),
        ))
    }

    // ------------------------------------------------------------------
    // Sessioned ingestion: typed handles over a bounded ingress
    // ------------------------------------------------------------------

    /// Open a typed ingestion session on the named input stream.
    ///
    /// Resolution happens **once**: the handle captures the event type's
    /// payload schema and its `(query, port)` subscriber lists per routing
    /// shard, so staging and flushing never repeat the string-keyed
    /// lookups the deprecated [`Engine::push`] paid per message. The
    /// handle stages a local [`MessageBatch`] via its typed
    /// [`insert`](SourceHandle::insert) / [`retract`](SourceHandle::retract)
    /// / [`cti`](SourceHandle::cti) builders and flushes it against the
    /// bounded per-shard ingress ([`EngineConfig::ingress_capacity`]) —
    /// blocking-style via [`flush`](SourceHandle::flush) (drains the
    /// engine when full) or with real backpressure via
    /// [`try_flush`](SourceHandle::try_flush), which surfaces
    /// [`EngineError::IngressFull`].
    ///
    /// The handle borrows the engine exclusively, so the routing it
    /// resolved cannot go stale and the engine cannot be sealed while a
    /// session is open. Errors: [`EngineError::UnknownEventType`],
    /// [`EngineError::Sealed`].
    pub fn source(&mut self, event_type: &str) -> Result<SourceHandle<'_>, EngineError> {
        if self.sealed {
            return Err(EngineError::Sealed);
        }
        let arity = match self.catalog.lookup(event_type) {
            Ok(def) => def.fields.len(),
            Err(_) => return Err(self.unknown_type(event_type)),
        };
        let subs = self.resolve_subs(event_type);
        Ok(SourceHandle::new(self, event_type.to_string(), arity, subs))
    }

    /// Open a **concurrent** typed ingestion session on the named input
    /// stream: a [`ChannelSource`] that is `Send + Clone` and holds no
    /// engine borrow, so provider threads can feed the engine while it
    /// drains.
    ///
    /// Resolution still happens once, here: the handle carries an
    /// `Arc`-shared snapshot of the event type's `(query, port)`
    /// subscriber lists and feeds a bounded mpsc ingress
    /// ([`EngineConfig::channel_depth`]) that [`Engine::pump`] /
    /// [`Engine::run_pipelined`] drain in canonical producer order.
    /// Because the snapshot is taken now, register every standing query
    /// *before* opening channel sources. Producer keys are assigned in
    /// call order — open sources in a deterministic order to make the
    /// whole ingestion schedule deterministic (see [`crate::ingest`]).
    ///
    /// Errors: [`EngineError::UnknownEventType`], [`EngineError::Sealed`].
    pub fn channel_source(&mut self, event_type: &str) -> Result<ChannelSource, EngineError> {
        if self.sealed {
            return Err(EngineError::Sealed);
        }
        let arity = match self.catalog.lookup(event_type) {
            Ok(def) => def.fields.len(),
            Err(_) => return Err(self.unknown_type(event_type)),
        };
        let subs: Arc<[(usize, SubscriberList)]> = self.resolve_subs(event_type).into();
        let depth = self.config.channel_depth;
        self.channel_acct.seen = true;
        let ch = self
            .channel
            .get_or_insert_with(|| ChannelIngress::new(depth));
        // A restore leaves the checkpointed open lanes waiting for their
        // producers to come back: reattach to those (emission cursor
        // intact, ascending key order) before minting fresh keys.
        let (key, emitted) = match ch.resume_keys.pop_front() {
            Some(resume) => resume,
            None => {
                let key = ch.next_key;
                ch.next_key += 1;
                ch.reseq.register(key);
                (key, 0)
            }
        };
        let (tx, board, depth) = (ch.tx.clone(), Arc::clone(&ch.board), ch.depth);
        Ok(ChannelSource::new(
            Arc::from(event_type),
            arity,
            subs,
            tx,
            key,
            board,
            depth,
            emitted,
            Arc::clone(&self.obs),
        ))
    }

    /// Per-shard ingress observability: staged/admitted/backpressure
    /// counters for every routing shard, in shard order.
    pub fn shard_ingress_stats(&self) -> Vec<IngressStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Engine-wide ingress counters: the per-shard
    /// [`Engine::shard_ingress_stats`] folded together, plus
    /// channel-source backpressure (flushes that found the bounded mpsc
    /// channel full — live and retired channels both; the per-producer
    /// attribution is in [`Engine::metrics`]).
    pub fn ingress_stats(&self) -> IngressStats {
        let mut total = IngressStats::default();
        for s in &self.shards {
            total.absorb(&s.stats);
        }
        total.backpressure_events += self.channel_backpressure_total();
        total
    }

    /// Full-channel backpressure across the live channel (if any) and
    /// every channel retired by [`Engine::seal`].
    pub(crate) fn channel_backpressure_total(&self) -> u64 {
        let live = self
            .channel
            .as_ref()
            .map(|ch| {
                ch.board
                    .backpressure
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .unwrap_or(0);
        live + self.channel_acct.retired_backpressure
    }

    /// Record that admission found `shard` at capacity (blocking drains
    /// and `try_*` rejections both land here).
    pub(crate) fn note_backpressure(&mut self, shard: usize) {
        if let Some(s) = self.shards.get_mut(shard) {
            s.stats.backpressure_events += 1;
        }
        self.obs.trace(|| TraceEvent::Backpressure {
            shard: shard.min(u16::MAX as usize) as u16,
        });
    }

    /// Open an incremental subscription on a query's output change stream.
    ///
    /// The subscription cursors the query collector's append-only
    /// [`OutputDelta`](cedr_streams::OutputDelta) log from the beginning:
    /// each [`poll`](Subscription::poll) first drains any staged ingress
    /// (consumption drives the scheduler) and then returns exactly the
    /// deltas appended since the previous poll — the insert/retract/CTI
    /// change stream itself, bit-identical to
    /// [`Collector::stamped`](cedr_streams::Collector::stamped) order at
    /// every consistency level and thread count, with no state re-read and
    /// no copying. Several subscriptions may cursor the same query
    /// independently, and a sealed engine can still be drained.
    pub fn subscribe(&self, q: QueryId) -> Result<Subscription, EngineError> {
        if q.0 >= self.queries.len() {
            return Err(EngineError::UnknownQuery(q));
        }
        Ok(Subscription::new(q))
    }

    /// The output collector of a query: the accumulated history tables,
    /// stamped tape and delta log behind every subscription.
    ///
    /// # Panics
    /// On an unregistered `QueryId` (use [`Engine::subscribe`] for a typed
    /// error).
    pub fn collector(&self, q: QueryId) -> &Collector {
        let rq = &self.queries[q.0];
        rq.plan.dataflow.collector(rq.plan.sink)
    }

    /// Stage a batch on the named input stream without draining the
    /// dataflows: each shard resolves its own subscribers and queues an
    /// `Arc`-shared clone on its ingress — no cross-shard coordination.
    /// Pair with [`Engine::run_to_quiescence`] to ingest several per-type
    /// batches (one per provider stream, say) and then run every query's
    /// graph once over the union.
    ///
    /// Admission is bounded: once a target shard holds
    /// [`EngineConfig::ingress_capacity`] staged messages, this call
    /// **drains the engine first** (backpressure by blocking). Use
    /// [`Engine::try_enqueue_batch`] to get [`EngineError::IngressFull`]
    /// instead and decide for yourself.
    pub fn enqueue_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        self.enqueue_impl(event_type, batch, true)
    }

    /// [`Engine::enqueue_batch`] with backpressure surfaced: if the batch
    /// does not fit a target shard's bounded ingress, nothing is staged
    /// and [`EngineError::IngressFull`] is returned.
    pub fn try_enqueue_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        self.enqueue_impl(event_type, batch, false)
    }

    fn enqueue_impl(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
        block: bool,
    ) -> Result<(), EngineError> {
        if self.sealed {
            return Err(EngineError::Sealed);
        }
        if !self.catalog.contains(event_type) {
            return Err(self.unknown_type(event_type));
        }
        let subs = self.resolve_subs(event_type);
        self.admit_resolved(event_type, batch.clone(), &subs, block)
    }

    /// An [`EngineError::UnknownEventType`] naming every registered type.
    fn unknown_type(&self, name: &str) -> EngineError {
        EngineError::UnknownEventType {
            name: name.to_string(),
            registered: self
                .catalog
                .type_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// Resolve the per-shard subscriber lists of an event type — the
    /// lookup a [`SourceHandle`] performs once at open time. Cloning a
    /// list is an `Arc` refcount bump.
    pub(crate) fn resolve_subs(&self, event_type: &str) -> Vec<(usize, SubscriberList)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(si, s)| s.routing.get(event_type).map(|subs| (si, subs.clone())))
            .collect()
    }

    /// Mint a fresh-ID primitive event (the handle builders' allocator).
    pub(crate) fn mint_event(&mut self, interval: Interval, payload: Vec<Value>) -> Arc<Event> {
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        Arc::new(Event::primitive(
            id,
            interval,
            Payload::from_values(payload),
        ))
    }

    /// Does a batch of `len` messages fit every target shard's bounded
    /// ingress right now? On failure, the [`EngineError::IngressFull`]
    /// names the first full shard. A batch larger than the capacity
    /// itself fits an *empty* shard (it could never be admitted
    /// otherwise).
    pub(crate) fn check_capacity(
        &self,
        event_type: &str,
        len: usize,
        subs: &[(usize, SubscriberList)],
    ) -> Result<(), EngineError> {
        let cap = self.config.ingress_capacity;
        for (si, _) in subs {
            let shard = &self.shards[*si];
            if shard.staged_msgs > 0 && shard.staged_msgs + len > cap {
                return Err(EngineError::IngressFull {
                    event_type: event_type.to_string(),
                    shard: *si,
                    capacity: cap,
                    staged: shard.staged_msgs,
                    batch: len,
                });
            }
        }
        Ok(())
    }

    /// Admit a batch to the ingress queues of the given (pre-resolved)
    /// shards, enforcing [`EngineConfig::ingress_capacity`]: when a target
    /// shard lacks room ([`Engine::check_capacity`]), either drain the
    /// whole engine first (`block`) or stage nothing and return
    /// [`EngineError::IngressFull`].
    pub(crate) fn admit_resolved(
        &mut self,
        event_type: &str,
        mut batch: MessageBatch,
        subs: &[(usize, SubscriberList)],
        block: bool,
    ) -> Result<(), EngineError> {
        let len = batch.len();
        if len == 0 || subs.is_empty() {
            return Ok(());
        }
        if let Err(full) = self.check_capacity(event_type, len, subs) {
            if let EngineError::IngressFull { shard, .. } = full {
                self.note_backpressure(shard);
            }
            if !block {
                return Err(full);
            }
            // Backpressure by draining: empties every ingress. The time
            // the producer spends blocked in this forced drain is the
            // flush_block histogram.
            let t0 = self.obs.now();
            self.run_to_quiescence();
            let blocked = self.obs.now().saturating_sub(t0);
            self.obs.with_timings(|t| t.flush_block.record(blocked));
        }
        // First admission since the last drain opens the ingest→delta
        // latency window (closed by `run_to_quiescence`).
        if self.round_open_at.is_none() {
            self.round_open_at = Some(self.obs.now());
        }
        let n = subs.len();
        for (i, (si, s)) in subs.iter().enumerate() {
            let shard = &mut self.shards[*si];
            shard.staged_msgs += len;
            shard.stats.staged_batches += 1;
            shard.stats.staged_messages += len as u64;
            // One `Arc`-shared batch clone per shard (the last target takes
            // the batch by move), however many of its queries subscribe;
            // fan-out to subscribers happens at drain time.
            let b = if i + 1 == n {
                std::mem::take(&mut batch)
            } else {
                batch.clone()
            };
            shard.ingress.push((b, s.clone()));
        }
        Ok(())
    }

    /// Immediate per-message delivery to pre-resolved subscribers: the
    /// historical [`Engine::push`] cascade minus its per-call lookups.
    /// Ingestion order is preserved across the APIs: staged ingress is
    /// drained first, so a direct send (a CTI, say) can never overtake
    /// data that was enqueued before it.
    pub(crate) fn send_resolved(&mut self, subs: &[(usize, SubscriberList)], msg: Message) {
        if self.shards.iter().any(|s| !s.ingress.is_empty()) {
            self.run_to_quiescence();
        }
        for (_, s) in subs {
            for &(q, port) in s.iter() {
                self.queries[q].plan.dataflow.push_source(port, msg.clone());
            }
        }
    }

    /// Drain every shard's staged ingress into its queries' dataflows and
    /// run them to quiescence — serially, or on one worker thread per
    /// shard when configured with more than one thread. Each query always
    /// receives its batches in enqueue order, so the two modes are
    /// bit-identical.
    pub fn run_to_quiescence(&mut self) {
        let t0 = self.obs.now();
        self.obs.trace(|| {
            let staged: usize = self.shards.iter().map(|s| s.ingress.len()).sum();
            TraceEvent::RoundStart {
                round: self.rounds_completed + 1,
                staged_batches: staged.min(u32::MAX as usize) as u32,
            }
        });
        let deltas_before = self.round_open_at.map(|_| self.deltas_logged_total());
        self.drain_round();
        let t1 = self.obs.now();
        let nanos = t1.saturating_sub(t0);
        self.obs.with_timings(|t| t.round_drain.record(nanos));
        self.obs.trace(|| TraceEvent::RoundEnd {
            round: self.rounds_completed,
            nanos,
        });
        // Ingestion→subscription-delta latency: close the window opened by
        // the first admission iff this drain appended output deltas.
        if let (Some(opened), Some(before)) = (self.round_open_at.take(), deltas_before) {
            if self.deltas_logged_total() > before {
                self.obs
                    .with_timings(|t| t.ingest_to_delta.record(t1.saturating_sub(opened)));
            }
        }
    }

    /// Total output deltas appended across every query's collector.
    fn deltas_logged_total(&self) -> u64 {
        self.queries
            .iter()
            .map(|rq| rq.plan.dataflow.collector(rq.plan.sink).delta_log().len() as u64)
            .sum()
    }

    /// The uninstrumented drain behind [`Engine::run_to_quiescence`].
    fn drain_round(&mut self) {
        self.rounds_completed += 1;
        let busy = self.shards.iter().filter(|s| !s.ingress.is_empty()).count();
        if self.config.threads <= 1 || busy <= 1 {
            let mut drained: Vec<(MessageBatch, SubscriberList)> = Vec::new();
            let mut messages = 0u64;
            for shard in &mut self.shards {
                shard.staged_msgs = 0;
                for (batch, subs) in std::mem::take(&mut shard.ingress) {
                    shard.stats.admitted_batches += 1;
                    shard.stats.admitted_messages += batch.len() as u64;
                    messages += batch.len() as u64;
                    drained.push((batch, subs));
                }
            }
            // Group the drained round per query (shard order preserves
            // each query's enqueue order — a query lives in exactly one
            // shard), then hand each dataflow its whole round at once.
            let mut rounds: Vec<Vec<(usize, &MessageBatch)>> =
                (0..self.queries.len()).map(|_| Vec::new()).collect();
            for (batch, subs) in &drained {
                for &(q, port) in subs.iter() {
                    rounds[q].push((port, batch));
                }
            }
            let t0 = self.obs.tracing().then(|| self.obs.now());
            for (q, round) in self.queries.iter_mut().zip(rounds) {
                q.plan.dataflow.run_round(round);
            }
            // One ShardDrain for the whole serial sweep, by convention on
            // shard 0 (the histogram stays parallel-path only).
            if let Some(t0) = t0 {
                let nanos = self.obs.now().saturating_sub(t0);
                self.obs.trace(|| TraceEvent::ShardDrain {
                    shard: 0,
                    batches: drained.len().min(u32::MAX as usize) as u32,
                    messages: messages.min(u32::MAX as u64) as u32,
                    nanos,
                });
            }
            return;
        }
        // Parallel drain: hand each shard its own queries. Buckets are
        // disjoint because every query belongs to exactly one shard, and
        // ordered by query index, so per-shard drain order is
        // deterministic.
        let shard_of = &self.shard_of_query;
        let mut buckets: Vec<Vec<(usize, &mut RunningQuery)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (qi, rq) in self.queries.iter_mut().enumerate() {
            buckets[shard_of[qi]].push((qi, rq));
        }
        let obs = Arc::clone(&self.obs);
        std::thread::scope(|scope| {
            for (sid, (shard, bucket)) in self.shards.iter_mut().zip(buckets).enumerate() {
                if shard.ingress.is_empty() && bucket.is_empty() {
                    continue;
                }
                let hub = Arc::clone(&obs);
                scope.spawn(move || {
                    let t0 = hub.now();
                    shard.staged_msgs = 0;
                    let drained = std::mem::take(&mut shard.ingress);
                    let mut messages = 0u64;
                    let mut rounds: Vec<Vec<(usize, &MessageBatch)>> =
                        (0..bucket.len()).map(|_| Vec::new()).collect();
                    for (batch, subs) in &drained {
                        shard.stats.admitted_batches += 1;
                        shard.stats.admitted_messages += batch.len() as u64;
                        messages += batch.len() as u64;
                        for &(q, port) in subs.iter() {
                            // `bucket` is sorted ascending by query index.
                            let slot = bucket
                                .binary_search_by_key(&q, |(qi, _)| *qi)
                                .expect("query routed to its own shard");
                            rounds[slot].push((port, batch));
                        }
                    }
                    let batches = drained.len();
                    for ((_, rq), round) in bucket.into_iter().zip(rounds) {
                        rq.plan.dataflow.run_round(round);
                    }
                    let nanos = hub.now().saturating_sub(t0);
                    hub.with_timings(|t| t.shard_drain.record(nanos));
                    hub.trace(|| TraceEvent::ShardDrain {
                        shard: sid.min(u16::MAX as usize) as u16,
                        batches: batches.min(u32::MAX as usize) as u32,
                        messages: messages.min(u32::MAX as u64) as u32,
                        nanos,
                    });
                });
            }
        });
    }

    /// Declare a guarantee on *all* registered event types (a provider-wide
    /// sync point). Staged through the batch path: every input's CTI is
    /// enqueued first, then all dataflows drain once. Errors with
    /// [`EngineError::Sealed`] once the engine is sealed.
    pub fn advance_all(&mut self, t: TimePoint) -> Result<(), EngineError> {
        if self.sealed {
            return Err(EngineError::Sealed);
        }
        self.broadcast_cti(t);
        Ok(())
    }

    fn broadcast_cti(&mut self, t: TimePoint) {
        let types: Vec<String> = self
            .catalog
            .type_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut cti = MessageBatch::new();
        cti.push_cti(t);
        for ty in types {
            let subs = self.resolve_subs(&ty);
            let _ = self.admit_resolved(&ty, cti.clone(), &subs, true);
        }
        self.run_to_quiescence();
    }

    /// Seal every input with `CTI(∞)` — no more data will arrive.
    ///
    /// Sealing is **idempotent**: the guarantee is broadcast once, and
    /// repeated calls are no-ops rather than fresh `CTI(∞)` rounds. After
    /// sealing, every ingestion entry point ([`Engine::source`],
    /// [`Engine::enqueue_batch`], [`Engine::advance_all`], the deprecated
    /// `push_*` shims) returns [`EngineError::Sealed`]; subscriptions keep
    /// draining normally.
    ///
    /// The channel ingress is **torn down**: live [`ChannelSource`]s are
    /// disconnected, so a provider blocked on a full channel unblocks
    /// immediately and every later `flush`/`try_flush` quietly discards
    /// (there is nothing left to feed — no thread can be stranded by a
    /// shutdown). Anything those sources had emitted but the pump had not
    /// yet admitted is dropped with the channel; drain first with
    /// [`Engine::run_pipelined`] when that traffic matters.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.broadcast_cti(TimePoint::INFINITY);
        self.sealed = true;
        self.obs.trace(|| TraceEvent::Seal {
            round: self.rounds_completed,
        });
        // Dropping the ingress (its receiver in particular) is what turns
        // provider-side sends into no-ops. Its backpressure counters are
        // retired into the engine-side channel accounting — per-producer
        // attribution intact — so `ingress_stats` (and the metrics
        // snapshot) stay monotone across the seal.
        if let Some(ch) = self.channel.take() {
            self.channel_acct.retire(
                ch.board
                    .backpressure
                    .load(std::sync::atomic::Ordering::Relaxed),
                ch.board.backpressure_by_producer(),
            );
        }
    }

    /// Has [`Engine::seal`] run?
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    // ------------------------------------------------------------------
    // Deprecated string-keyed shims (see the migration note in the
    // module docs) — thin wrappers over handles and the collector.
    // ------------------------------------------------------------------

    /// Push a message on the named input stream; every query consuming the
    /// type receives it via the routing table.
    #[deprecated(
        since = "0.3.0",
        note = "open a session once with `engine.source(ty)?` and use \
                `SourceHandle::send` (or stage/flush for batching)"
    )]
    pub fn push(&mut self, event_type: &str, msg: Message) -> Result<(), EngineError> {
        self.source(event_type)?.send(msg);
        Ok(())
    }

    /// Push a whole batch on the named input stream and drain.
    #[deprecated(
        since = "0.3.0",
        note = "open a session once with `engine.source(ty)?`, stage with \
                `SourceHandle::stage_batch`, then flush"
    )]
    pub fn push_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        {
            let mut h = self.source(event_type)?.manual_flush();
            h.stage_batch(batch);
            h.flush();
        }
        self.run_to_quiescence();
        Ok(())
    }

    /// Push an insert.
    #[deprecated(
        since = "0.3.0",
        note = "use `engine.source(ty)?` with `SourceHandle::insert` (typed, \
                resolve-once) instead"
    )]
    pub fn push_insert(&mut self, event_type: &str, event: Event) -> Result<(), EngineError> {
        self.source(event_type)?.send(Message::insert_event(event));
        Ok(())
    }

    /// Push a retraction shortening `event` to `[Vs, new_end)`.
    #[deprecated(
        since = "0.3.0",
        note = "use `engine.source(ty)?` with `SourceHandle::retract` instead"
    )]
    pub fn push_retract(
        &mut self,
        event_type: &str,
        event: Event,
        new_end: TimePoint,
    ) -> Result<(), EngineError> {
        self.source(event_type)?
            .send(Message::Retract(Retraction::new(event, new_end)));
        Ok(())
    }

    /// Declare an occurrence-time guarantee on one input stream.
    #[deprecated(
        since = "0.3.0",
        note = "use `engine.source(ty)?` with `SourceHandle::cti` instead"
    )]
    pub fn push_cti(&mut self, event_type: &str, t: TimePoint) -> Result<(), EngineError> {
        self.source(event_type)?.send(Message::Cti(t));
        Ok(())
    }

    /// The output collector of a query.
    #[deprecated(
        since = "0.3.0",
        note = "renamed to `collector`; for incremental consumption of the \
                change stream use `engine.subscribe(q)?`"
    )]
    pub fn output(&self, q: QueryId) -> &Collector {
        self.collector(q)
    }

    /// Plan-wide runtime statistics of a query (Figure-8 observables).
    pub fn stats(&self, q: QueryId) -> OpStats {
        self.queries[q.0].plan.dataflow.total_stats()
    }

    /// Per-node statistics `(name, stats)` in plan order.
    pub fn node_stats(&self, q: QueryId) -> Vec<(&'static str, OpStats)> {
        let df = &self.queries[q.0].plan.dataflow;
        (0..df.node_count())
            .map(|n| (df.node_name(n), df.stats(n).clone()))
            .collect()
    }

    /// The optimized logical plan, rendered.
    pub fn explain(&self, q: QueryId) -> &str {
        &self.queries[q.0].explain
    }

    pub fn query_name(&self, q: QueryId) -> &str {
        &self.queries[q.0].name
    }

    pub fn query_spec(&self, q: QueryId) -> ConsistencySpec {
        self.queries[q.0].spec
    }

    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::time::t;

    fn machine_engine() -> Engine {
        let mut e = Engine::new();
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        e
    }

    #[test]
    fn register_and_run_text_query() {
        let mut e = machine_engine();
        let q = e
            .register_query(cedr_lang::parser::CIDR07_EXAMPLE, ConsistencySpec::middle())
            .unwrap();
        assert_eq!(e.query_name(q), "CIDR07_Example");
        assert!(e.explain(q).contains("Unless"));

        let mut installs = e.source("INSTALL").unwrap();
        installs.insert(100, vec![Value::str("m1")]).unwrap();
        drop(installs);
        let mut shutdowns = e.source("SHUTDOWN").unwrap();
        shutdowns.insert(200, vec![Value::str("m1")]).unwrap();
        drop(shutdowns);
        e.seal();
        assert_eq!(e.collector(q).stats().inserts, 1);
    }

    #[test]
    fn multiple_queries_share_inputs_independently() {
        let mut e = machine_engine();
        let q_strong = e
            .register_query(
                "EVENT A WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::strong(),
            )
            .unwrap();
        let q_middle = e
            .register_query(
                "EVENT B WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::middle(),
            )
            .unwrap();
        let mut installs = e.source("INSTALL").unwrap();
        assert_eq!(installs.subscriber_count(), 2, "both queries subscribe");
        installs.insert(10, vec![Value::str("m")]).unwrap();
        drop(installs);
        e.source("SHUTDOWN")
            .unwrap()
            .insert(20, vec![Value::str("m")])
            .unwrap();
        e.seal();
        assert_eq!(e.collector(q_strong).stats().inserts, 1);
        assert_eq!(e.collector(q_middle).stats().inserts, 1);
        assert_eq!(
            e.query_spec(q_strong).level(),
            cedr_runtime::ConsistencyLevel::Strong
        );
    }

    #[test]
    fn event_minting_validates() {
        let mut e = machine_engine();
        assert!(matches!(
            e.event("NOPE", 0, vec![]),
            Err(EngineError::UnknownEventType { .. })
        ));
        assert!(matches!(
            e.event("INSTALL", 0, vec![]),
            Err(EngineError::PayloadArity { .. })
        ));
        let ev1 = e.event("INSTALL", 0, vec![Value::str("m")]).unwrap();
        let ev2 = e.event("INSTALL", 0, vec![Value::str("m")]).unwrap();
        assert_ne!(ev1.id, ev2.id, "fresh IDs");
    }

    #[test]
    fn unknown_type_error_names_the_registered_types() {
        let mut e = machine_engine();
        let err = e.source("NOPE").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("'NOPE'"), "{msg}");
        for ty in ["INSTALL", "RESTART", "SHUTDOWN"] {
            assert!(msg.contains(ty), "{msg} should list {ty}");
        }
        let empty = Engine::new().source("X").unwrap_err().to_string();
        assert!(empty.contains("no types registered"), "{empty}");
    }

    #[test]
    fn sealed_engine_rejects_ingestion_and_seal_is_idempotent() {
        let mut e = machine_engine();
        let q = e
            .register_query(
                "EVENT A WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::middle(),
            )
            .unwrap();
        e.source("INSTALL")
            .unwrap()
            .insert(10, vec![Value::str("m")])
            .unwrap();
        e.seal();
        assert!(e.is_sealed());
        let ctis_after_first_seal = e.collector(q).stats().ctis;

        // Idempotent: a second seal must not re-broadcast CTI(∞)...
        e.seal();
        assert_eq!(e.collector(q).stats().ctis, ctis_after_first_seal);
        // ...and every ingestion entry point is a typed error now.
        assert!(matches!(e.source("INSTALL"), Err(EngineError::Sealed)));
        assert!(matches!(
            e.enqueue_batch("INSTALL", &MessageBatch::new()),
            Err(EngineError::Sealed)
        ));
        assert!(matches!(e.advance_all(t(99)), Err(EngineError::Sealed)));
        #[allow(deprecated)]
        {
            let ev = Event::primitive(EventId(77), Interval::point(t(5)), Payload::empty());
            assert!(matches!(
                e.push_insert("INSTALL", ev),
                Err(EngineError::Sealed)
            ));
        }
        // Consumption still works on a sealed engine.
        let mut sub = e.subscribe(q).unwrap();
        assert!(!sub.poll(&mut e).is_empty());
    }

    #[test]
    fn subscribe_validates_the_query() {
        let e = machine_engine();
        assert!(matches!(
            e.subscribe(QueryId(3)),
            Err(EngineError::UnknownQuery(QueryId(3)))
        ));
    }

    #[test]
    fn try_flush_surfaces_ingress_backpressure() {
        let mut e = Engine::with_config(EngineConfig::serial().with_ingress_capacity(8));
        e.register_event_type("T", vec![("v", FieldType::Int)]);
        let plan = {
            use crate::builder::PlanBuilder;
            use cedr_algebra::expr::Pred;
            PlanBuilder::source("T").select(Pred::True).into_plan()
        };
        let q = e
            .register_plan("q", plan, ConsistencySpec::middle())
            .unwrap();
        let mut sub = e.subscribe(q).unwrap();

        let mut h = e.source("T").unwrap().manual_flush();
        for i in 0..6u64 {
            h.insert(i, vec![Value::Int(i as i64)]).unwrap();
        }
        h.try_flush().unwrap();
        for i in 6..12u64 {
            h.insert(i, vec![Value::Int(i as i64)]).unwrap();
        }
        // 6 staged + 6 incoming > 8: backpressure.
        let err = h.try_flush().unwrap_err();
        assert!(matches!(err, EngineError::IngressFull { .. }));
        assert!(err.to_string().contains("ingress full"), "{err}");
        assert_eq!(h.staged_len(), 6, "failed try_flush must not lose data");
        // The blocking flush drains the engine and admits.
        h.flush();
        assert_eq!(h.staged_len(), 0);
        drop(h);
        assert_eq!(sub.poll(&mut e).len(), 12, "all 12 inserts observed");
    }

    #[test]
    fn oversized_batch_admitted_alone_into_empty_shard() {
        let mut e = Engine::with_config(EngineConfig::serial().with_ingress_capacity(4));
        e.register_event_type("T", vec![("v", FieldType::Int)]);
        let plan = {
            use crate::builder::PlanBuilder;
            use cedr_algebra::expr::Pred;
            PlanBuilder::source("T").select(Pred::True).into_plan()
        };
        let q = e
            .register_plan("q", plan, ConsistencySpec::middle())
            .unwrap();
        let mut h = e.source("T").unwrap().manual_flush();
        for i in 0..10u64 {
            h.insert(i, vec![Value::Int(i as i64)]).unwrap();
        }
        h.try_flush()
            .expect("an empty shard admits one oversized batch");
        drop(h);
        e.run_to_quiescence();
        assert_eq!(e.collector(q).stats().inserts, 10);
    }

    #[test]
    fn handle_autoflush_bounds_local_staging() {
        let mut e = Engine::new();
        e.register_event_type("T", vec![("v", FieldType::Int)]);
        let plan = {
            use crate::builder::PlanBuilder;
            use cedr_algebra::expr::Pred;
            PlanBuilder::source("T").select(Pred::True).into_plan()
        };
        let q = e
            .register_plan("q", plan, ConsistencySpec::middle())
            .unwrap();
        let mut h = e.source("T").unwrap().with_autoflush(4);
        for i in 0..9u64 {
            h.insert(i, vec![Value::Int(i as i64)]).unwrap();
            assert!(h.staged_len() < 4, "autoflush keeps staging bounded");
        }
        h.sync();
        drop(h);
        assert_eq!(e.collector(q).stats().inserts, 9);
    }

    #[test]
    #[allow(deprecated)]
    fn push_after_enqueue_drains_staged_ingress_first() {
        use crate::builder::PlanBuilder;
        use cedr_algebra::expr::Pred;
        // A direct push (here: a CTI) must never overtake batches that
        // were staged before it — the guarantee would otherwise reach the
        // shells ahead of the data it covers.
        let build = || {
            let mut e = Engine::with_config(EngineConfig::threaded(2));
            e.register_event_type("T", vec![("v", FieldType::Int)]);
            let plan = PlanBuilder::source("T").select(Pred::True).into_plan();
            let q = e
                .register_plan("q", plan, ConsistencySpec::strong())
                .unwrap();
            let mut batch = MessageBatch::new();
            for i in 0..10u64 {
                batch.push(Message::insert(
                    i + 1,
                    Interval::new(t(i), t(i + 3)),
                    cedr_temporal::Payload::from_values(vec![Value::Int(i as i64)]),
                ));
            }
            (e, q, batch)
        };
        // Reference: explicit drain between staging and the CTI.
        let (mut a, qa, batch) = build();
        a.enqueue_batch("T", &batch).unwrap();
        a.run_to_quiescence();
        a.push_cti("T", t(100)).unwrap();
        // Same calls without the explicit drain: push must flush first.
        let (mut b, qb, batch) = build();
        b.enqueue_batch("T", &batch).unwrap();
        b.push_cti("T", t(100)).unwrap();
        assert_eq!(a.output(qa).stamped(), b.output(qb).stamped());
    }

    #[test]
    fn queries_spread_round_robin_over_shards() {
        let mut e = Engine::with_config(EngineConfig::threaded(3));
        assert_eq!(e.shard_count(), 3);
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        for i in 0..5 {
            e.register_query(
                &format!("EVENT Q{i} WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)"),
                ConsistencySpec::middle(),
            )
            .unwrap();
        }
        assert_eq!(e.shard_of_query, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn threaded_drain_is_bit_identical_to_serial() {
        let run = |threads: usize| {
            let mut e = Engine::with_config(EngineConfig::threaded(threads));
            for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
                e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
            }
            let mut qs = Vec::new();
            for i in 0..5 {
                qs.push(
                    e.register_query(
                        &format!("EVENT Q{i} WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)"),
                        ConsistencySpec::middle(),
                    )
                    .unwrap(),
                );
            }
            let mut installs = e.source("INSTALL").unwrap();
            for i in 0..20u64 {
                installs
                    .insert(10 * i, vec![Value::str(format!("m{}", i % 4))])
                    .unwrap();
            }
            drop(installs);
            let mut shutdowns = e.source("SHUTDOWN").unwrap();
            for i in 0..20u64 {
                shutdowns
                    .insert(10 * i + 5, vec![Value::str(format!("m{}", i % 4))])
                    .unwrap();
            }
            drop(shutdowns);
            e.run_to_quiescence();
            e.seal();
            (e, qs)
        };
        let (serial, qs) = run(1);
        for threads in [2, 4] {
            let (par, qp) = run(threads);
            for (a, b) in qs.iter().zip(qp.iter()) {
                assert_eq!(
                    serial.collector(*a).stamped(),
                    par.collector(*b).stamped(),
                    "threads={threads}: output diverged"
                );
                // The subscription view is the same change stream: drained
                // deltas must coincide entry for entry across thread
                // counts too.
                let (mut sa, mut sb) = (serial.subscribe(*a).unwrap(), par.subscribe(*b).unwrap());
                assert_eq!(
                    sa.drain_ready(&serial),
                    sb.drain_ready(&par),
                    "threads={threads}: subscription deltas diverged"
                );
                assert_eq!(serial.stats(*a), par.stats(*b));
            }
        }
    }
}
