//! The CEDR engine: standing-query registration, shared-source routing,
//! batch ingestion and per-query consistency.
//!
//! Applications "specify consistency requirements on a per query basis"
//! (Section 1): each registered query gets its own operator instances
//! running at its own ⟨M, B⟩ spectrum point, fed from shared named input
//! streams.
//!
//! Ingestion is built for fan-out at scale. The engine's event-type
//! routing table is **sharded**: queries are assigned round-robin to
//! [`EngineConfig::threads`] shards at registration, and each shard owns
//! its slice of the event-type → `(query, source port)` table plus its own
//! ingress queue. [`Engine::push`] is per-shard table lookups plus one
//! `Arc`-shared [`Message`] clone per subscriber — never a payload
//! deep-copy, regardless of how many standing queries share a stream.
//! [`Engine::push_batch`] hands whole [`MessageBatch`]es to each
//! subscriber's batch-at-a-time dataflow, and the
//! [`Engine::enqueue_batch`]/[`Engine::run_to_quiescence`] pair lets
//! callers stage several per-type batches (e.g. one per provider stream)
//! and then drain every query's dataflow once, maximising the runs the
//! schedulers can amortise.
//!
//! With `threads > 1`, [`Engine::run_to_quiescence`] drains the shards on
//! scoped worker threads — each worker owns its shard's ingress queue and
//! queries outright, so the hot path takes **no global lock** (routing is
//! resolved at staging time, and shard state is disjoint by construction).
//! Every query's dataflow still sees its staged batches in exactly the
//! enqueue order, so threaded and serial drains produce bit-identical
//! outputs at every consistency level; queries are independent dataflows,
//! which makes the deterministic merge argument of
//! [`cedr_runtime::scheduler`] trivial at this layer.

use cedr_lang::catalog::{Catalog, EventTypeDef, FieldType};
use cedr_lang::{compile, lower, optimize, LangError, LogicalOp, LoweredPlan};
use cedr_runtime::{ConsistencySpec, OpStats};
use cedr_streams::{Collector, Message, MessageBatch, Retraction};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint, Value};
use std::collections::HashMap;
use std::fmt;

/// Handle to a registered standing query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    Lang(LangError),
    UnknownEventType(String),
    UnknownQuery(QueryId),
    PayloadArity {
        event_type: String,
        expected: usize,
        got: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lang(e) => write!(f, "{e}"),
            EngineError::UnknownEventType(t) => write!(f, "unknown event type '{t}'"),
            EngineError::UnknownQuery(q) => write!(f, "unknown query {q:?}"),
            EngineError::PayloadArity {
                event_type,
                expected,
                got,
            } => write!(
                f,
                "payload arity mismatch for {event_type}: expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LangError> for EngineError {
    fn from(e: LangError) -> Self {
        EngineError::Lang(e)
    }
}

struct RunningQuery {
    name: String,
    plan: LoweredPlan,
    spec: ConsistencySpec,
    explain: String,
}

/// Execution configuration of an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::run_to_quiescence`]; also the number
    /// of routing-table shards. `1` = fully serial.
    pub threads: usize,
}

impl EngineConfig {
    /// Single-threaded execution (one shard, serial drain).
    pub fn serial() -> Self {
        EngineConfig { threads: 1 }
    }

    /// `threads` workers / routing shards (clamped to at least 1).
    pub fn threaded(threads: usize) -> Self {
        EngineConfig {
            threads: threads.max(1),
        }
    }

    /// Read `CEDR_THREADS` from the environment (default: 1). This is the
    /// knob the CI matrix turns to run the whole test suite serial and
    /// threaded — outputs are bit-identical either way.
    pub fn from_env() -> Self {
        let threads = std::env::var("CEDR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        EngineConfig { threads }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

/// One slice of the sharded routing table: the queries assigned to one
/// worker, their event-type subscriptions, and their staged ingress.
#[derive(Default)]
struct EngineShard {
    /// Event-type name → `(query index, source port)` subscribers whose
    /// query lives in this shard.
    routing: HashMap<String, Vec<(usize, usize)>>,
    /// Staged batches awaiting the next drain, in enqueue order, each with
    /// the `(query, port)` subscribers it fans out to (one shared batch
    /// clone per shard, not per subscriber).
    ingress: Vec<(MessageBatch, Vec<(usize, usize)>)>,
}

/// The CEDR engine.
pub struct Engine {
    catalog: Catalog,
    queries: Vec<RunningQuery>,
    /// Routing shards; query `q` lives in shard `shard_of_query[q]`.
    /// Rebuilt incrementally at registration; makes `push` lookups instead
    /// of a scan over every standing query.
    shards: Vec<EngineShard>,
    shard_of_query: Vec<usize>,
    config: EngineConfig,
    next_event_id: u64,
}

impl Engine {
    /// An engine configured from the environment
    /// ([`EngineConfig::from_env`]; serial unless `CEDR_THREADS` is set).
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::from_env())
    }

    /// An engine with an explicit execution configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let n = config.threads.max(1);
        Engine {
            catalog: Catalog::new(),
            queries: Vec::new(),
            shards: (0..n).map(|_| EngineShard::default()).collect(),
            shard_of_query: Vec::new(),
            config,
            next_event_id: 1,
        }
    }

    /// The active execution configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of routing-table shards (== configured threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Record the sources a freshly-registered query consumes in its
    /// shard's routing table. Queries are spread round-robin, which keeps
    /// shard loads balanced for homogeneous standing queries.
    fn index_query(&mut self, q: usize) {
        let shard = q % self.shards.len();
        self.shard_of_query.push(shard);
        for (port, ty) in self.queries[q].plan.source_types.iter().enumerate() {
            self.shards[shard]
                .routing
                .entry(ty.clone())
                .or_default()
                .push((q, port));
        }
    }

    /// Register a primitive event type.
    pub fn register_event_type(&mut self, name: &str, fields: Vec<(&str, FieldType)>) {
        self.catalog.register(EventTypeDef::new(name, fields));
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a query from CEDR query text.
    pub fn register_query(
        &mut self,
        text: &str,
        spec: ConsistencySpec,
    ) -> Result<QueryId, EngineError> {
        let compiled = compile(text, &self.catalog, spec)?;
        self.queries.push(RunningQuery {
            name: compiled.name,
            plan: compiled.plan,
            spec,
            explain: compiled.explain,
        });
        let q = self.queries.len() - 1;
        self.index_query(q);
        Ok(QueryId(q))
    }

    /// Register a programmatic plan (see [`crate::builder::PlanBuilder`]).
    pub fn register_plan(
        &mut self,
        name: &str,
        root: LogicalOp,
        spec: ConsistencySpec,
    ) -> Result<QueryId, EngineError> {
        let optimized = optimize(root);
        let explain = format!("{optimized}");
        let plan = lower(&optimized, &self.catalog, spec)?;
        self.queries.push(RunningQuery {
            name: name.to_string(),
            plan,
            spec,
            explain,
        });
        let q = self.queries.len() - 1;
        self.index_query(q);
        Ok(QueryId(q))
    }

    /// Mint a point event `[vs, vs+1)` of a registered type with a fresh ID.
    pub fn event(
        &mut self,
        event_type: &str,
        vs: u64,
        payload: Vec<Value>,
    ) -> Result<Event, EngineError> {
        self.event_with_interval(event_type, Interval::point(TimePoint::new(vs)), payload)
    }

    /// Mint an event with an explicit validity interval.
    pub fn event_with_interval(
        &mut self,
        event_type: &str,
        interval: Interval,
        payload: Vec<Value>,
    ) -> Result<Event, EngineError> {
        let def = self
            .catalog
            .lookup(event_type)
            .map_err(|_| EngineError::UnknownEventType(event_type.to_string()))?;
        if def.fields.len() != payload.len() {
            return Err(EngineError::PayloadArity {
                event_type: event_type.to_string(),
                expected: def.fields.len(),
                got: payload.len(),
            });
        }
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        Ok(Event::primitive(
            id,
            interval,
            Payload::from_values(payload),
        ))
    }

    /// Push a message on the named input stream; every query consuming the
    /// type receives it via the routing table. Fan-out is one `Arc`-shared
    /// `Message` clone per subscriber — the event payload is never
    /// deep-copied, no matter how many queries share the stream.
    ///
    /// Ingestion order is preserved across the two APIs: if batches are
    /// still staged from [`Engine::enqueue_batch`], they are drained
    /// first, so a direct push (a CTI, say) can never overtake data that
    /// was enqueued before it.
    pub fn push(&mut self, event_type: &str, msg: Message) -> Result<(), EngineError> {
        if !self.catalog.contains(event_type) {
            return Err(EngineError::UnknownEventType(event_type.to_string()));
        }
        if self.shards.iter().any(|s| !s.ingress.is_empty()) {
            self.run_to_quiescence();
        }
        for shard in &self.shards {
            if let Some(subs) = shard.routing.get(event_type) {
                for &(q, port) in subs {
                    self.queries[q].plan.dataflow.push_source(port, msg.clone());
                }
            }
        }
        Ok(())
    }

    /// Push a whole batch on the named input stream. Every subscriber
    /// receives the same `Arc`-backed batch and processes it through its
    /// batch-at-a-time dataflow scheduler in amortised runs.
    pub fn push_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        self.enqueue_batch(event_type, batch)?;
        self.run_to_quiescence();
        Ok(())
    }

    /// Stage a batch on the named input stream without draining the
    /// dataflows: each shard resolves its own subscribers and queues an
    /// `Arc`-shared clone on its ingress — no cross-shard coordination.
    /// Pair with [`Engine::run_to_quiescence`] to ingest several per-type
    /// batches (one per provider stream, say) and then run every query's
    /// graph once over the union.
    pub fn enqueue_batch(
        &mut self,
        event_type: &str,
        batch: &MessageBatch,
    ) -> Result<(), EngineError> {
        if !self.catalog.contains(event_type) {
            return Err(EngineError::UnknownEventType(event_type.to_string()));
        }
        for shard in &mut self.shards {
            if let Some(subs) = shard.routing.get(event_type) {
                // One `Arc`-shared batch clone per shard, however many of
                // its queries subscribe; fan-out to subscribers happens at
                // drain time.
                shard.ingress.push((batch.clone(), subs.clone()));
            }
        }
        Ok(())
    }

    /// Drain every shard's staged ingress into its queries' dataflows and
    /// run them to quiescence — serially, or on one worker thread per
    /// shard when configured with more than one thread. Each query always
    /// receives its batches in enqueue order, so the two modes are
    /// bit-identical.
    pub fn run_to_quiescence(&mut self) {
        let busy = self.shards.iter().filter(|s| !s.ingress.is_empty()).count();
        if self.config.threads <= 1 || busy <= 1 {
            for shard in &mut self.shards {
                for (batch, subs) in std::mem::take(&mut shard.ingress) {
                    for (q, port) in subs {
                        self.queries[q]
                            .plan
                            .dataflow
                            .enqueue_source_batch(port, &batch);
                    }
                }
            }
            for q in &mut self.queries {
                q.plan.dataflow.run_to_quiescence();
            }
            return;
        }
        // Parallel drain: hand each shard its own queries. Buckets are
        // disjoint because every query belongs to exactly one shard, and
        // ordered by query index, so per-shard drain order is
        // deterministic.
        let shard_of = &self.shard_of_query;
        let mut buckets: Vec<Vec<(usize, &mut RunningQuery)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (qi, rq) in self.queries.iter_mut().enumerate() {
            buckets[shard_of[qi]].push((qi, rq));
        }
        std::thread::scope(|scope| {
            for (shard, mut bucket) in self.shards.iter_mut().zip(buckets) {
                if shard.ingress.is_empty() && bucket.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for (batch, subs) in std::mem::take(&mut shard.ingress) {
                        for (q, port) in subs {
                            // `bucket` is sorted ascending by query index.
                            let slot = bucket
                                .binary_search_by_key(&q, |(qi, _)| *qi)
                                .expect("query routed to its own shard");
                            bucket[slot]
                                .1
                                .plan
                                .dataflow
                                .enqueue_source_batch(port, &batch);
                        }
                    }
                    for (_, rq) in bucket {
                        rq.plan.dataflow.run_to_quiescence();
                    }
                });
            }
        });
    }

    /// Push an insert.
    pub fn push_insert(&mut self, event_type: &str, event: Event) -> Result<(), EngineError> {
        self.push(event_type, Message::insert_event(event))
    }

    /// Push a retraction shortening `event` to `[Vs, new_end)`.
    pub fn push_retract(
        &mut self,
        event_type: &str,
        event: Event,
        new_end: TimePoint,
    ) -> Result<(), EngineError> {
        self.push(
            event_type,
            Message::Retract(Retraction::new(event, new_end)),
        )
    }

    /// Declare an occurrence-time guarantee on one input stream.
    pub fn push_cti(&mut self, event_type: &str, t: TimePoint) -> Result<(), EngineError> {
        self.push(event_type, Message::Cti(t))
    }

    /// Declare a guarantee on *all* registered event types (a provider-wide
    /// sync point). Staged through the batch path: every input's CTI is
    /// enqueued first, then all dataflows drain once.
    pub fn advance_all(&mut self, t: TimePoint) {
        let types: Vec<String> = self
            .catalog
            .type_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut cti = MessageBatch::new();
        cti.push_cti(t);
        for ty in types {
            let _ = self.enqueue_batch(&ty, &cti);
        }
        self.run_to_quiescence();
    }

    /// Seal every input with `CTI(∞)` — no more data will arrive.
    pub fn seal(&mut self) {
        self.advance_all(TimePoint::INFINITY);
    }

    /// The output collector of a query.
    pub fn output(&self, q: QueryId) -> &Collector {
        let rq = &self.queries[q.0];
        rq.plan.dataflow.collector(rq.plan.sink)
    }

    /// Plan-wide runtime statistics of a query (Figure-8 observables).
    pub fn stats(&self, q: QueryId) -> OpStats {
        self.queries[q.0].plan.dataflow.total_stats()
    }

    /// Per-node statistics `(name, stats)` in plan order.
    pub fn node_stats(&self, q: QueryId) -> Vec<(&'static str, OpStats)> {
        let df = &self.queries[q.0].plan.dataflow;
        (0..df.node_count())
            .map(|n| (df.node_name(n), df.stats(n).clone()))
            .collect()
    }

    /// The optimized logical plan, rendered.
    pub fn explain(&self, q: QueryId) -> &str {
        &self.queries[q.0].explain
    }

    pub fn query_name(&self, q: QueryId) -> &str {
        &self.queries[q.0].name
    }

    pub fn query_spec(&self, q: QueryId) -> ConsistencySpec {
        self.queries[q.0].spec
    }

    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::time::t;

    fn machine_engine() -> Engine {
        let mut e = Engine::new();
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        e
    }

    #[test]
    fn register_and_run_text_query() {
        let mut e = machine_engine();
        let q = e
            .register_query(cedr_lang::parser::CIDR07_EXAMPLE, ConsistencySpec::middle())
            .unwrap();
        assert_eq!(e.query_name(q), "CIDR07_Example");
        assert!(e.explain(q).contains("Unless"));

        let i = e.event("INSTALL", 100, vec![Value::str("m1")]).unwrap();
        e.push_insert("INSTALL", i).unwrap();
        let s = e.event("SHUTDOWN", 200, vec![Value::str("m1")]).unwrap();
        e.push_insert("SHUTDOWN", s).unwrap();
        e.seal();
        assert_eq!(e.output(q).stats().inserts, 1);
    }

    #[test]
    fn multiple_queries_share_inputs_independently() {
        let mut e = machine_engine();
        let q_strong = e
            .register_query(
                "EVENT A WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::strong(),
            )
            .unwrap();
        let q_middle = e
            .register_query(
                "EVENT B WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)",
                ConsistencySpec::middle(),
            )
            .unwrap();
        let i = e.event("INSTALL", 10, vec![Value::str("m")]).unwrap();
        e.push_insert("INSTALL", i).unwrap();
        let s = e.event("SHUTDOWN", 20, vec![Value::str("m")]).unwrap();
        e.push_insert("SHUTDOWN", s).unwrap();
        e.seal();
        assert_eq!(e.output(q_strong).stats().inserts, 1);
        assert_eq!(e.output(q_middle).stats().inserts, 1);
        assert_eq!(
            e.query_spec(q_strong).level(),
            cedr_runtime::ConsistencyLevel::Strong
        );
    }

    #[test]
    fn event_minting_validates() {
        let mut e = machine_engine();
        assert!(matches!(
            e.event("NOPE", 0, vec![]),
            Err(EngineError::UnknownEventType(_))
        ));
        assert!(matches!(
            e.event("INSTALL", 0, vec![]),
            Err(EngineError::PayloadArity { .. })
        ));
        let ev1 = e.event("INSTALL", 0, vec![Value::str("m")]).unwrap();
        let ev2 = e.event("INSTALL", 0, vec![Value::str("m")]).unwrap();
        assert_ne!(ev1.id, ev2.id, "fresh IDs");
    }

    #[test]
    fn push_to_unknown_type_fails() {
        let mut e = machine_engine();
        assert!(e.push_cti("NOPE", t(5)).is_err());
    }

    #[test]
    fn push_after_enqueue_drains_staged_ingress_first() {
        use crate::builder::PlanBuilder;
        use cedr_algebra::expr::Pred;
        // A direct push (here: a CTI) must never overtake batches that
        // were staged before it — the guarantee would otherwise reach the
        // shells ahead of the data it covers.
        let build = || {
            let mut e = Engine::with_config(EngineConfig::threaded(2));
            e.register_event_type("T", vec![("v", FieldType::Int)]);
            let plan = PlanBuilder::source("T").select(Pred::True).into_plan();
            let q = e
                .register_plan("q", plan, ConsistencySpec::strong())
                .unwrap();
            let mut batch = MessageBatch::new();
            for i in 0..10u64 {
                batch.push(Message::insert(
                    i + 1,
                    Interval::new(t(i), t(i + 3)),
                    cedr_temporal::Payload::from_values(vec![Value::Int(i as i64)]),
                ));
            }
            (e, q, batch)
        };
        // Reference: explicit drain between staging and the CTI.
        let (mut a, qa, batch) = build();
        a.enqueue_batch("T", &batch).unwrap();
        a.run_to_quiescence();
        a.push_cti("T", t(100)).unwrap();
        // Same calls without the explicit drain: push must flush first.
        let (mut b, qb, batch) = build();
        b.enqueue_batch("T", &batch).unwrap();
        b.push_cti("T", t(100)).unwrap();
        assert_eq!(a.output(qa).stamped(), b.output(qb).stamped());
    }

    #[test]
    fn queries_spread_round_robin_over_shards() {
        let mut e = Engine::with_config(EngineConfig::threaded(3));
        assert_eq!(e.shard_count(), 3);
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        for i in 0..5 {
            e.register_query(
                &format!("EVENT Q{i} WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)"),
                ConsistencySpec::middle(),
            )
            .unwrap();
        }
        assert_eq!(e.shard_of_query, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn threaded_drain_is_bit_identical_to_serial() {
        let run = |threads: usize| {
            let mut e = Engine::with_config(EngineConfig::threaded(threads));
            for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
                e.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
            }
            let mut qs = Vec::new();
            for i in 0..5 {
                qs.push(
                    e.register_query(
                        &format!("EVENT Q{i} WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours)"),
                        ConsistencySpec::middle(),
                    )
                    .unwrap(),
                );
            }
            let mut installs = MessageBatch::new();
            let mut shutdowns = MessageBatch::new();
            for i in 0..20u64 {
                let ev = e
                    .event("INSTALL", 10 * i, vec![Value::str(format!("m{}", i % 4))])
                    .unwrap();
                installs.push(Message::insert_event(ev));
                let ev = e
                    .event(
                        "SHUTDOWN",
                        10 * i + 5,
                        vec![Value::str(format!("m{}", i % 4))],
                    )
                    .unwrap();
                shutdowns.push(Message::insert_event(ev));
            }
            e.enqueue_batch("INSTALL", &installs).unwrap();
            e.enqueue_batch("SHUTDOWN", &shutdowns).unwrap();
            e.run_to_quiescence();
            e.seal();
            (e, qs)
        };
        let (serial, qs) = run(1);
        for threads in [2, 4] {
            let (par, qp) = run(threads);
            for (a, b) in qs.iter().zip(qp.iter()) {
                assert_eq!(
                    serial.output(*a).stamped(),
                    par.output(*b).stamped(),
                    "threads={threads}: output diverged"
                );
                assert_eq!(serial.stats(*a), par.stats(*b));
            }
        }
    }
}
