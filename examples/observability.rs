//! Observability tour: one engine, two standing queries, two concurrent
//! providers — then a single [`Engine::metrics`] snapshot rendered three
//! ways: the human operator report, the Prometheus text exposition, and
//! the tail of the structured trace ring.
//!
//! The snapshot unifies counters that previously lived behind separate
//! accessors (per-query collector stats, per-node operator stats,
//! per-shard ingress stats, channel pump state, checkpoint accounting)
//! with the latency histograms the engine records around rounds, shard
//! drains and channel sends. Tracing is opt-in: this example turns it on
//! with [`EngineConfig::with_trace_capacity`]; production code can use
//! `CEDR_TRACE=1` instead, and with it off the trace closures never run.
//!
//! Run with: `cargo run --example observability`

use cedr::core::prelude::*;
use cedr::core::validate_exposition;
use cedr::temporal::time::dur;
use std::thread;

fn main() {
    // Tracing on (512-slot ring); a small channel depth so the fast
    // producers actually exercise the backpressure accounting.
    let config = EngineConfig::from_env()
        .with_trace_capacity(512)
        .with_channel_depth(4);
    let mut engine = Engine::with_config(config);
    engine.register_event_type(
        "TICK",
        vec![("Symbol", FieldType::Int), ("Qty", FieldType::Int)],
    );

    // Two standing queries over the same stream, at different consistency.
    let spikes = PlanBuilder::source("TICK")
        .select(Pred::cmp(Scalar::Field(1), CmpOp::Gt, Scalar::lit(90i64)))
        .into_plan();
    let spikes = engine
        .register_plan("qty_spikes", spikes, ConsistencySpec::strong())
        .unwrap();
    let volume = PlanBuilder::source("TICK")
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Sum(Scalar::Field(1)))
        .into_plan();
    let volume = engine
        .register_plan("symbol_volume", volume, ConsistencySpec::middle())
        .unwrap();
    let mut spike_sub = engine.subscribe(spikes).unwrap();
    let volume_sub = engine.subscribe(volume).unwrap();

    // Two provider threads, each with its own producer key — the snapshot
    // attributes channel backpressure per key.
    let feeds: Vec<ChannelSource> = (0..2)
        .map(|_| engine.channel_source("TICK").unwrap().with_autoflush(4))
        .collect();
    let producers: Vec<_> = feeds
        .into_iter()
        .enumerate()
        .map(|(p, mut feed)| {
            thread::spawn(move || {
                for i in 0..200u64 {
                    let vs = p as u64 * 7 + i;
                    feed.insert(
                        vs,
                        vec![
                            Value::Int((i % 5) as i64),
                            Value::Int((vs * 13 % 101) as i64),
                        ],
                    )
                    .unwrap();
                }
                feed.seal(); // stages CTI(∞): "this producer is complete"
            })
        })
        .collect();
    engine.run_pipelined().unwrap();
    for p in producers {
        p.join().unwrap();
    }
    engine.seal();
    let spike_deltas = spike_sub.drain_ready(&engine).len();
    println!("consumed {spike_deltas} spike deltas; leaving the volume cursor lagging\n");

    // ----- one snapshot, three renderings --------------------------------
    let mut snap = engine.metrics();
    // Cursors live with consumers, so they opt in per subscription.
    spike_sub.observe(&mut snap, "spike_alerts");
    volume_sub.observe(&mut snap, "volume_dashboard");

    println!("========== operator report ==========");
    println!("{}", snap.render_report());

    let expo = snap.render_prometheus();
    let summary = validate_exposition(&expo).expect("exposition is well-formed");
    println!("========== prometheus exposition ==========");
    println!(
        "{} metric families, {} samples — first lines:",
        summary.families, summary.samples
    );
    for line in expo.lines().take(12) {
        println!("{line}");
    }
    println!("...\n");

    println!(
        "========== trace ring (last 8 of {}) ==========",
        snap.trace.recorded
    );
    let events = engine.trace_events();
    for ev in events.iter().rev().take(8).rev() {
        println!("{ev:?}");
    }

    // The counter classes behave as documented: semantic totals are
    // invariant across CEDR_THREADS / CEDR_FUSE / CEDR_COMPILE, so this
    // example asserts on them regardless of environment.
    let sem = snap.semantic();
    assert_eq!(sem.queries.len(), 2);
    assert_eq!(
        sem.queries[1].inserts,
        engine.collector(volume).stats().inserts as u64
    );
    assert!(sem.rounds_completed > 0);
    println!(
        "\nsemantic counters check out: {} rounds, sealed={}",
        sem.rounds_completed, sem.sealed
    );
}
