//! Durable monitoring: checkpoint a standing query mid-stream, crash,
//! restore into a fresh engine, resume — and the subscription deltas line
//! up exactly where they left off.
//!
//! A sensor fleet feeds a windowed per-sensor load query. Halfway through
//! the feed the process "dies" right after taking a round-boundary
//! checkpoint ([`Engine::checkpoint_to_vec`]). A brand-new engine with the
//! same registrations restores the image, the consumer fast-forwards its
//! cursor past what it had already consumed, the remaining readings are
//! replayed, and the combined delta stream is compared against an unfailed
//! run: bit-identical, so the recovery was invisible.
//!
//! Run with: `cargo run --example durable_monitoring`

use cedr::core::prelude::*;
use cedr::temporal::time::{dur, t};

/// One registration sequence, used for every engine in this example — the
/// checkpoint's configuration hash ties an image to it.
fn build_engine() -> (Engine, QueryId) {
    let mut engine = Engine::new();
    engine.register_event_type("READING", vec![("Sensor_Id", FieldType::Int)]);
    let load = PlanBuilder::source("READING")
        .window(dur(60))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let q = engine
        .register_plan("per_sensor_load", load, ConsistencySpec::middle())
        .unwrap();
    (engine, q)
}

/// The fleet's feed: pre-minted readings in flushable rounds. Pre-minted
/// IDs are what let the provider re-present the identical events after a
/// restore.
fn reading_rounds() -> Vec<MessageBatch> {
    let mut b = StreamBuilder::with_id_base(1);
    for i in 0..60u64 {
        let vs = i * 3 % 170;
        let e = b.insert(
            Interval::new(t(vs), t(vs + 20)),
            Payload::from_values(vec![Value::Int((i % 4) as i64)]),
        );
        if i % 9 == 0 {
            // A reading withdrawn by its sensor: retraction mid-window.
            b.retract(e.clone(), e.vs() + dur(5));
        }
    }
    let ordered = b.build_ordered(Some(dur(25)), true);
    ordered
        .chunks(8)
        .map(|c| c.iter().cloned().collect::<MessageBatch>())
        .collect()
}

fn feed_round(engine: &mut Engine, round: &MessageBatch) {
    let mut h = engine.source("READING").unwrap().manual_flush();
    h.stage_batch(round);
    h.flush();
    drop(h);
    engine.run_to_quiescence();
}

fn main() {
    let rounds = reading_rounds();
    let half = rounds.len() / 2;

    // ----- the monitored process, until it dies --------------------------
    let (mut engine, q) = build_engine();
    let mut sub = engine.subscribe(q).unwrap();
    let mut consumed = 0usize;
    for round in &rounds[..half] {
        feed_round(&mut engine, round);
        consumed += sub.poll(&mut engine).len();
    }
    println!(
        "fed {half} rounds, consumed {consumed} deltas, checkpointing at round {}",
        engine.rounds_completed()
    );

    // The durable part: the image plus the consumer's cursor is all the
    // state that has to survive. (A real deployment writes both to disk;
    // `Engine::checkpoint` takes any `io::Write`.)
    let image = engine.checkpoint_to_vec().unwrap();
    let saved_cursor = sub.position();
    println!(
        "checkpoint: {} bytes, consumer cursor at {saved_cursor}",
        image.len()
    );
    // The unified snapshot at the durability boundary: checkpoint
    // counters, pump/resequencer state and the consumer's cursor lag in
    // one report (see `cargo run --example observability` for the tour).
    let mut at_checkpoint = engine.metrics();
    sub.observe(&mut at_checkpoint, "monitor");
    println!(
        "----- report at checkpoint -----\n{}",
        at_checkpoint.render_report()
    );
    drop(engine); // the crash — nothing of the process survives but the image

    // ----- the replacement process ---------------------------------------
    let (mut engine, q) = build_engine();
    engine
        .restore_from_slice(&image)
        .expect("the image validates end to end before anything is applied");
    println!(
        "restored at round {}, replaying the remaining {} rounds",
        engine.rounds_completed(),
        rounds.len() - half
    );
    println!(
        "----- report after restore -----\n{}",
        engine.metrics().render_report()
    );
    // The delta log is part of the image; a fresh subscription
    // fast-forwards past the prefix the dead process already consumed.
    let mut sub = engine.subscribe(q).unwrap();
    let skipped = sub.take(&engine, saved_cursor).len();
    assert_eq!(skipped, saved_cursor, "the restored log covers the cursor");
    for round in &rounds[half..] {
        feed_round(&mut engine, round);
        consumed += sub.poll(&mut engine).len();
    }
    engine.seal();
    consumed += sub.drain_ready(&engine).len();
    println!("resumed cleanly: {consumed} deltas consumed across the crash");

    // ----- proof: the crash was invisible --------------------------------
    let (mut unfailed, uq) = build_engine();
    let mut usub = unfailed.subscribe(uq).unwrap();
    let mut straight = 0usize;
    for round in &rounds {
        feed_round(&mut unfailed, round);
        straight += usub.poll(&mut unfailed).len();
    }
    unfailed.seal();
    straight += usub.drain_ready(&unfailed).len();

    assert_eq!(consumed, straight, "same number of deltas either way");
    assert_eq!(
        engine.collector(q).stamped(),
        unfailed.collector(uq).stamped(),
        "stamped tapes are bit-identical"
    );
    assert_eq!(
        engine.collector(q).max_cti(),
        unfailed.collector(uq).max_cti(),
        "output guarantee is bit-identical"
    );
    println!(
        "unfailed run agrees: {straight} deltas, stamped tape and output CTI bit-identical — \
         recovery was invisible"
    );
}
