//! Scenario 1 of the paper's introduction: "an application running on a
//! trader's desktop may track a moving average of the value of an
//! investment portfolio … updated continuously as stock updates arrive …
//! but does not require perfect accuracy."
//!
//! Built with the relational view-update algebra (Section 6) through the
//! programmatic builder: ticks ⋈ positions → position value → 30-minute
//! moving average per symbol, run at *weak* consistency (bounded memory) —
//! the level this application calls for.
//!
//! Run with: `cargo run --example portfolio_monitor`

use cedr::core::prelude::*;
use cedr::workload::finance::{self, MarketConfig, PortfolioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    engine.register_event_type(
        "TICK",
        vec![("sym", FieldType::Str), ("px", FieldType::Float)],
    );
    engine.register_event_type(
        "POSITION",
        vec![("sym", FieldType::Str), ("qty", FieldType::Int)],
    );

    // value(sym, t) = px * qty while a tick's 30-minute lifetime overlaps
    // the position; averaged per symbol over the window.
    let ticks = PlanBuilder::source("TICK")
        .inserts() // points → open lifetimes
        .window(Duration::minutes(30)); // clipped to the averaging window
    let positions = PlanBuilder::source("POSITION");
    let plan = ticks
        .join(
            positions,
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        // payload now [sym, px, sym, qty]
        .project(
            vec![
                Scalar::Field(0),
                Scalar::Mul(Box::new(Scalar::Field(1)), Box::new(Scalar::Field(3))),
            ],
            vec!["sym".into(), "value".into()],
        )
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Avg(Scalar::Field(1)))
        .into_plan();

    // The desktop app tolerates imperfection: weak consistency with a
    // 1-hour memory bound keeps state tiny.
    let q = engine.register_plan(
        "portfolio_moving_average",
        plan,
        ConsistencySpec::weak(Duration::hours(1)),
    )?;
    println!("Plan:\n{}", engine.explain(q));

    // Watch the output as a change stream: the desktop app repaints from
    // deltas, it never re-reads the whole aggregate table.
    let mut sub = engine.subscribe(q)?;

    // Positions cover the session: one source session stages them all and
    // seals the stream with CTI ∞.
    let mut positions = engine.source("POSITION")?;
    for p in finance::generate_positions(&PortfolioConfig::default(), 1_000_000) {
        positions.insert_event(p)?;
    }
    positions.cti(TimePoint::INFINITY);
    drop(positions);

    // Ticks stream in with mild disorder through their own session,
    // auto-flushing against the engine's bounded ingress as they go.
    let market = MarketConfig {
        symbols: 8,
        ticks_per_symbol: 300,
        ..Default::default()
    };
    let tick_events = finance::generate_ticks(&market, 0);
    let horizon = tick_events.last().map(|e| e.vs()).unwrap_or(t(0));
    let stream = finance::to_stream(&tick_events, Some(Duration::minutes(5)));
    let scrambled = cedr::streams::scramble(&stream, &DisorderConfig::heavy(9, 120, 20));
    let mut ticks = engine.source("TICK")?;
    for m in scrambled {
        ticks.stage(m);
    }
    drop(ticks);

    // Drain the change stream: repairs arrive as retract deltas.
    let mut repairs = 0usize;
    let mut updates = 0usize;
    sub.for_each(&mut engine, |d| match d {
        OutputDelta::Retract { .. } => repairs += 1,
        OutputDelta::Insert { .. } => updates += 1,
        _ => {}
    });

    let out = engine.collector(q);
    let net = out.net_table();
    println!(
        "\n{} ticks -> {} aggregate segments ({} updates, {} repairs observed \
         incrementally)",
        tick_events.len(),
        net.len(),
        updates,
        repairs,
    );
    let probe = TimePoint::new(horizon.0 / 2);
    println!("\nPortfolio value moving averages at t={probe}:");
    let mut rows = net.snapshot_at(probe);
    rows.sort_by(|a, b| a.payload.0.cmp(&b.payload.0));
    for row in rows {
        println!(
            "  {:<8} avg value {:>12.2}   (segment {})",
            row.payload.get(0).unwrap().to_string(),
            row.payload.get(1).and_then(|v| v.as_f64()).unwrap_or(0.0),
            row.interval
        );
    }
    let totals = engine.stats(q);
    println!(
        "\nWeak consistency kept peak state at {} entries across the plan \
         ({} late messages were simply forgotten).",
        totals.state_peak, totals.forgotten
    );
    Ok(())
}
