//! The paper's own running example (Section 3.1): alert when an INSTALL is
//! followed by a SHUTDOWN within 12 hours and then *no* RESTART within 5
//! minutes — UNLESS over SEQUENCE with a Machine_Id correlation key.
//!
//! The example runs the same disordered trace at all three consistency
//! levels and prints the Figure-8 trade-off live.
//!
//! Run with: `cargo run --example machine_monitoring`

use cedr::core::prelude::*;
use cedr::workload::machines::{self, MachineWorkloadConfig};
use cedr::workload::metrics::{accuracy_f1, merge_scramble};

const QUERY: &str = "\
EVENT CIDR07_Example
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE {x.Machine_Id = y.Machine_Id} AND
      {x.Machine_Id = z.Machine_Id}
OUTPUT x.Machine_Id AS machine";

fn run_at(
    spec: ConsistencySpec,
    trace: &machines::MachineTrace,
) -> Result<(Engine, QueryId), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
        engine.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
    }
    let q = engine.register_query(QUERY, spec)?;

    // One global delivery timeline with bounded disorder (the "unreliable
    // network" substrate) — identical for every consistency level.
    let streams = trace.to_streams(Some(Duration::minutes(10)));
    let routed: Vec<(usize, &[Message])> = streams
        .iter()
        .enumerate()
        .map(|(i, (_, msgs))| (i, msgs.as_slice()))
        .collect();
    let disorder = DisorderConfig::heavy(42, 6 * 3600, 25);
    let tape = merge_scramble(&routed, &disorder);

    // Concurrent-provider topology: one `ChannelSource` per monitored
    // stream, each fed from its own thread in disordered micro-batches,
    // while the engine thread pumps — providers feed the engine *while it
    // drains*. The pump's canonical round order makes the run
    // deterministic regardless of how the three threads interleave, so
    // the Figure-8 numbers below are stable run to run.
    let mut sources: Vec<ChannelSource> = streams
        .iter()
        .map(|(ty, _)| engine.channel_source(ty))
        .collect::<Result<_, _>>()?;
    let mut slices: Vec<Vec<MessageBatch>> = vec![Vec::new(); streams.len()];
    for chunk in tape.chunks(16) {
        let mut per_type = vec![MessageBatch::new(); streams.len()];
        for (slot, msg) in chunk {
            per_type[*slot].push(msg.clone());
        }
        for (slot, batch) in per_type.into_iter().enumerate() {
            if !batch.is_empty() {
                slices[slot].push(batch);
            }
        }
    }
    std::thread::scope(|scope| {
        for (src, batches) in sources.drain(..).zip(slices) {
            scope.spawn(move || {
                let mut src = src.manual_flush();
                for batch in batches {
                    src.stage_batch(&batch);
                    src.flush(); // one emission per micro-batch
                }
                // Dropping the source disconnects its provider.
            });
        }
        engine.run_pipelined()
    })?;
    Ok((engine, q))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineWorkloadConfig {
        machines: 10,
        episodes: 20,
        shutdown_prob: 0.85,
        restart_prob: 0.5,
        seed: 2007,
    };
    let trace = machines::generate(&cfg);
    println!(
        "Machine-monitoring trace: {} installs, {} shutdowns, {} restarts, \
         {} ground-truth alerts\n",
        trace.installs.len(),
        trace.shutdowns.len(),
        trace.restarts.len(),
        trace.expected_alerts
    );
    println!("Query:\n{QUERY}\n");

    let (ref_engine, ref_q) = run_at(ConsistencySpec::strong(), &trace)?;
    let reference = ref_engine.collector(ref_q).net_table();

    println!(
        "{:<22} {:>8} {:>12} {:>10} {:>12} {:>9}",
        "consistency", "alerts", "retractions", "blocked", "peak state", "accuracy"
    );
    for (name, spec) in [
        ("Strong ⟨B=∞,M=∞⟩", ConsistencySpec::strong()),
        ("Middle ⟨B=0,M=∞⟩", ConsistencySpec::middle()),
        ("Weak ⟨B=0,M=4h⟩", ConsistencySpec::weak(Duration::hours(4))),
    ] {
        let (engine, q) = run_at(spec, &trace)?;
        let out = engine.collector(q);
        let net = out.net_table();
        let totals = engine.stats(q);
        println!(
            "{:<22} {:>8} {:>12} {:>10} {:>12} {:>9.3}",
            name,
            net.len(),
            out.stats().retractions,
            totals.blocked_ticks,
            totals.state_peak,
            accuracy_f1(&net, &reference),
        );
        if spec == ConsistencySpec::strong() {
            assert_eq!(net.len(), trace.expected_alerts, "strong is exact");
        }
    }
    println!(
        "\nStrong blocks until guarantees cover the 12h+5min scopes;\n\
         middle alerts immediately and retracts when a late RESTART heals\n\
         an episode; weak forgets episodes older than 4 hours."
    );
    Ok(())
}
