//! Scenario 2 of the paper's introduction: "a second application … extracts
//! events from live news feeds and correlates these events with market
//! indicators to infer market sentiment … each event has a short 'shelf
//! life'. In order to be actionable, the query must identify a trading
//! opportunity as soon as possible with the information available at that
//! time; late events may result in a retraction."
//!
//! A SEQUENCE of two positive news items on the same symbol within the
//! shelf life signals sentiment — run at *middle* consistency, so signals
//! fire immediately and late contradicting input retracts them.
//!
//! Run with: `cargo run --example market_sentiment`

use cedr::core::prelude::*;
use cedr::workload::finance::{self, NewsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    engine.register_event_type(
        "NEWS",
        vec![("sym", FieldType::Str), ("sentiment", FieldType::Int)],
    );

    // Two positive stories on the same symbol within 5 minutes, with no
    // negative story in between (NOT over the sequence scope): a buy signal.
    let q = engine.register_query(
        "EVENT BuySignal \
         WHEN NOT(NEWS bad, SEQUENCE(NEWS a, NEWS b, 5 minutes)) \
         WHERE a.sentiment = 1 AND b.sentiment = 1 AND bad.sentiment = -1 \
           AND a.sym = b.sym AND a.sym = bad.sym \
         OUTPUT a.sym AS sym",
        ConsistencySpec::middle(),
    )?;
    println!("Plan:\n{}", engine.explain(q));

    // A news feed with short shelf lives, delivered with real disorder
    // (wire services race each other).
    let cfg = NewsConfig {
        symbols: 6,
        items: 400,
        shelf_life: Duration::minutes(5),
        span: 40_000,
        seed: 77,
    };
    let news = finance::generate_news(&cfg, 0);
    let stream = finance::to_stream(&news, Some(Duration::minutes(2)));
    let scrambled = cedr::streams::scramble(&stream, &DisorderConfig::heavy(5, 240, 15));
    // Signals must be actionable as soon as possible: one source session,
    // resolved once, delivering each story immediately (`send`) rather
    // than staging a batch.
    let mut feed = engine.source("NEWS")?;
    for m in scrambled {
        feed.send(m);
    }
    drop(feed);
    engine.seal();

    let out = engine.collector(q);
    let stats = out.stats().clone();
    println!(
        "\n{} news items -> {} signals fired, {} retracted after late \
         contradicting stories, {} final",
        news.len(),
        stats.inserts,
        stats.retractions,
        out.net_table().len()
    );

    // Cross-check the survivors against the denotational ground truth.
    let pos: Vec<Event> = news
        .iter()
        .filter(|e| e.payload.get(1) == Some(&Value::Int(1)))
        .cloned()
        .collect();
    let neg: Vec<Event> = news
        .iter()
        .filter(|e| e.payload.get(1) == Some(&Value::Int(-1)))
        .cloned()
        .collect();
    let same_sym = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
    let neg_same_sym = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(2, 0));
    let truth = cedr::algebra::pattern::not_sequence(
        &neg,
        &[pos.clone(), pos],
        Duration::minutes(5),
        &same_sym,
        &neg_same_sym,
    );
    println!(
        "Denotational ground truth: {} signals — {}",
        truth.len(),
        if truth.len() == out.net_table().len() {
            "runtime converged exactly"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(truth.len(), out.net_table().len());
    Ok(())
}
