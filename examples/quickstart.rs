//! Quickstart: register a pattern query, feed events through a typed
//! source session (including a retraction and a late arrival), and watch
//! CEDR repair its output — live, through an incremental subscription to
//! the insert/retract/CTI change stream.
//!
//! Run with: `cargo run --example quickstart`

use cedr::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the event schema.
    let mut engine = Engine::new();
    engine.register_event_type("LOGIN", vec![("user", FieldType::Str)]);
    engine.register_event_type("PURCHASE", vec![("user", FieldType::Str)]);

    // 2. Register a standing query in the CEDR language: a purchase within
    //    ten minutes of a login, by the same user. Middle consistency:
    //    output immediately, repair with retractions if needed.
    let q = engine.register_query(
        "EVENT LoginThenPurchase \
         WHEN SEQUENCE(LOGIN l, PURCHASE p, 10 minutes) \
         WHERE l.user = p.user \
         OUTPUT l.user AS user",
        ConsistencySpec::middle(),
    )?;
    println!("Optimized plan:\n{}", engine.explain(q));

    // 3. Subscribe to the query's output *change stream*: every poll
    //    drains exactly the deltas appended since the previous one.
    let mut sub = engine.subscribe(q)?;

    // 4. Open typed source sessions and stream events. The handle resolves
    //    the stream's routing once; `insert` validates the payload against
    //    the schema, mints the event, and stages it. Times are in ticks.
    let mut logins = engine.source("LOGIN")?;
    logins.insert(100, vec![Value::str("ada")])?;
    drop(logins); // closing the session flushes it
    let mut purchases = engine.source("PURCHASE")?;
    let purchase = purchases.insert(400, vec![Value::str("ada")])?;
    drop(purchases);

    println!("\nAfter ada's purchase:");
    for delta in sub.poll(&mut engine) {
        println!("  {delta:?}");
    }

    // 5. The provider retracts the purchase (it bounced): CEDR retracts the
    //    detection it had optimistically emitted, and the subscription
    //    observes the repair as a delta — no table re-read, no diffing.
    let mut purchases = engine.source("PURCHASE")?;
    purchases.retract(purchase.clone(), t(400));
    drop(purchases);
    println!("After the retraction:");
    let mut repairs = 0;
    sub.for_each(&mut engine, |delta| {
        if matches!(delta, OutputDelta::Retract { .. }) {
            repairs += 1;
        }
        println!("  {delta:?}");
    });
    println!(
        "  -> {repairs} repair(s), net {} detection(s)",
        engine.collector(q).net_table().len()
    );

    // 6. A *late* pair arrives out of order (purchase first, login after) —
    //    the match is still found, because CEDR state is ordered by
    //    occurrence time, not arrival time. Both sessions stage into the
    //    engine's bounded ingress; the poll drains everything at once.
    engine
        .source("PURCHASE")?
        .insert(950, vec![Value::str("bob")])?;
    engine
        .source("LOGIN")?
        .insert(900, vec![Value::str("bob")])?;

    // 7. Seal the streams (CTI ∞: no more input) and drain the rest.
    engine.seal();
    println!("\nAfter the late pair and the seal:");
    for delta in sub.poll(&mut engine) {
        println!("  {delta:?}");
    }

    let out = engine.collector(q);
    println!("\nFinal detections:");
    for row in &out.net_table().rows {
        println!("  {} valid {}", row.payload, row.interval);
    }
    let totals = engine.stats(q);
    println!(
        "\nRuntime: {} arrivals, peak state {}, output size {}",
        totals.arrivals,
        totals.state_peak,
        totals.output_size()
    );
    assert_eq!(out.net_table().len(), 1, "bob's match survives");
    assert_eq!(
        sub.position(),
        out.delta_log().len(),
        "subscription saw the whole change stream"
    );
    Ok(())
}
