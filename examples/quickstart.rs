//! Quickstart: register a pattern query, stream events (including a
//! retraction and a late arrival), and watch CEDR repair its output.
//!
//! Run with: `cargo run --example quickstart`

use cedr::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the event schema.
    let mut engine = Engine::new();
    engine.register_event_type("LOGIN", vec![("user", FieldType::Str)]);
    engine.register_event_type("PURCHASE", vec![("user", FieldType::Str)]);

    // 2. Register a standing query in the CEDR language: a purchase within
    //    ten minutes of a login, by the same user. Middle consistency:
    //    output immediately, repair with retractions if needed.
    let q = engine.register_query(
        "EVENT LoginThenPurchase \
         WHEN SEQUENCE(LOGIN l, PURCHASE p, 10 minutes) \
         WHERE l.user = p.user \
         OUTPUT l.user AS user",
        ConsistencySpec::middle(),
    )?;
    println!("Optimized plan:\n{}", engine.explain(q));

    // 3. Stream events. Times are in ticks (1 tick = 1 second).
    let login = engine.event("LOGIN", 100, vec![Value::str("ada")])?;
    engine.push_insert("LOGIN", login)?;
    let purchase = engine.event("PURCHASE", 400, vec![Value::str("ada")])?;
    engine.push_insert("PURCHASE", purchase.clone())?;

    println!(
        "\nAfter ada's purchase: {} detection(s)",
        engine.output(q).stats().inserts
    );

    // 4. The provider retracts the purchase (it bounced): CEDR retracts the
    //    detection it had optimistically emitted.
    engine.push_retract("PURCHASE", purchase, t(400))?;
    let stats = engine.output(q).stats().clone();
    println!(
        "After the retraction: {} insert(s), {} retraction(s) -> net {}",
        stats.inserts,
        stats.retractions,
        engine.output(q).net_table().len()
    );

    // 5. A *late* pair arrives out of order (purchase first, login after) —
    //    the match is still found, because CEDR state is ordered by
    //    occurrence time, not arrival time. The burst is ingested as staged
    //    batches: both streams enqueue, then every dataflow drains once.
    let purchase2 = engine.event("PURCHASE", 950, vec![Value::str("bob")])?;
    let login2 = engine.event("LOGIN", 900, vec![Value::str("bob")])?;
    let mut purchases = MessageBatch::new();
    purchases.push(Message::insert_event(purchase2));
    let mut logins = MessageBatch::new();
    logins.push(Message::insert_event(login2));
    engine.enqueue_batch("PURCHASE", &purchases)?;
    engine.enqueue_batch("LOGIN", &logins)?;
    engine.run_to_quiescence();

    // 6. Seal the streams (CTI ∞: no more input) and inspect.
    engine.seal();
    let out = engine.output(q);
    println!("\nFinal detections:");
    for row in &out.net_table().rows {
        println!("  {} valid {}", row.payload, row.interval);
    }
    let totals = engine.stats(q);
    println!(
        "\nRuntime: {} arrivals, peak state {}, output size {}",
        totals.arrivals,
        totals.state_peak,
        totals.output_size()
    );
    assert_eq!(out.net_table().len(), 1, "bob's match survives");
    Ok(())
}
