//! Scenario 3 of the paper's introduction: "a third application running in
//! the compliance office monitors trader activity … These queries may run
//! until the end of a trading session, perhaps longer, and must process all
//! events in proper order to make an accurate assessment."
//!
//! A churn rule at *strong* consistency: flag a trader who cancels an order
//! within 30 seconds of placing it (ORDER then CANCEL, same trader & order)
//! and does so without an intervening FILL. Strong consistency means the
//! monitor aligns all input by occurrence time before any output — no
//! retractions ever reach the audit log.
//!
//! Run with: `cargo run --example compliance_audit`

use cedr::core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    for ty in ["ORDER", "CANCEL", "FILL"] {
        engine.register_event_type(
            ty,
            vec![("trader", FieldType::Str), ("order_id", FieldType::Int)],
        );
    }

    let q = engine.register_query(
        "EVENT ChurnFlag \
         WHEN NOT(FILL f, SEQUENCE(ORDER o, CANCEL c, 30 seconds)) \
         WHERE o.order_id = c.order_id AND o.order_id = f.order_id \
         OUTPUT o.trader AS trader, o.order_id AS order_id",
        ConsistencySpec::strong(),
    )?;
    println!("Audit rule (strong consistency):\n{}", engine.explain(q));

    // Synthesise a trading session: some orders fill, some cancel fast
    // (churn), some cancel slowly (fine).
    let mut rng = StdRng::seed_from_u64(11);
    let mut expected_flags = 0usize;
    let mut orders = Vec::new();
    let mut cancels = Vec::new();
    let mut fills = Vec::new();
    for order_id in 0..200i64 {
        let trader = format!("trader-{}", order_id % 7);
        let placed = order_id as u64 * 45 + rng.gen_range(0..20);
        orders.push((placed, trader.clone(), order_id));
        match rng.gen_range(0..3) {
            0 => {
                // Fast cancel, no fill: churn.
                cancels.push((placed + rng.gen_range(1..30), trader, order_id));
                expected_flags += 1;
            }
            1 => {
                // Fill then (late, harmless) cancel — the fill is *between*
                // order and cancel, so NOT suppresses the flag.
                fills.push((placed + rng.gen_range(1..15), trader.clone(), order_id));
                cancels.push((placed + rng.gen_range(16..29), trader, order_id));
            }
            _ => {
                // Slow cancel outside the 30 s churn scope.
                cancels.push((placed + rng.gen_range(40..200), trader, order_id));
            }
        }
    }

    // Streams arrive out of order — the compliance office replays exchange
    // feeds over a flaky link — but strong consistency re-aligns them.
    // One source session per feed: routing resolves once, every replayed
    // message is delivered through the same typed handle.
    let push_all =
        |engine: &mut Engine, ty: &str, rows: &[(u64, String, i64)]| -> Result<(), EngineError> {
            let mut msgs = Vec::new();
            for (at, trader, oid) in rows {
                let ev = Event::primitive(
                    EventId(0xC0FFEE + msgs.len() as u64 + (*oid as u64) * 1000 + *at),
                    Interval::point(t(*at)),
                    Payload::from_values(vec![Value::str(trader), Value::Int(*oid)]),
                );
                msgs.push(Message::insert_event(ev));
            }
            msgs.sort_by_key(|m| m.sync());
            let mut stream: Vec<Message> = Vec::new();
            for m in msgs {
                stream.push(m.clone());
                stream.push(Message::Cti(m.sync()));
            }
            stream.push(Message::Cti(TimePoint::INFINITY));
            let scrambled = cedr::streams::scramble(&stream, &DisorderConfig::heavy(3, 300, 10));
            let mut feed = engine.source(ty)?;
            for m in scrambled {
                feed.send(m);
            }
            Ok(())
        };
    push_all(&mut engine, "ORDER", &orders)?;
    push_all(&mut engine, "CANCEL", &cancels)?;
    push_all(&mut engine, "FILL", &fills)?;

    let out = engine.collector(q);
    let stats = out.stats().clone();
    let totals = engine.stats(q);
    println!(
        "\nSession: {} orders, {} cancels, {} fills",
        orders.len(),
        cancels.len(),
        fills.len()
    );
    println!(
        "Churn flags: {} (expected {}), retractions in the audit log: {}",
        out.net_table().len(),
        expected_flags,
        stats.retractions
    );
    println!(
        "Cost of certainty: {} messages blocked for {} CEDR ticks total, \
         peak state {}",
        totals.blocked_messages, totals.blocked_ticks, totals.state_peak
    );
    assert_eq!(out.net_table().len(), expected_flags);
    assert_eq!(stats.retractions, 0, "an audit log is never rewritten");
    Ok(())
}
