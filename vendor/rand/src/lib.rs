//! Offline stand-in for `rand`.
//!
//! Implements exactly the API surface this repository uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float
//! ranges, and `Rng::gen_bool` — on top of the SplitMix64/xoshiro256**
//! generators. All workload generation in the repo is seeded, so the only
//! requirement is determinism and reasonable statistical quality, both of
//! which xoshiro256** provides.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
///
/// Like real rand, `SampleRange` has single blanket impls over
/// `Range<T>`/`RangeInclusive<T>` so type inference unifies integer
/// literals in the range with the expected result type.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// Draw from `[low, high)` (`inclusive = false`) or `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in gen_range");
        T::sample_between(start, end, true, rng)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64, mirroring rand's `StdRng` role:
    /// a deterministic, decent-quality generator for simulations.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
