//! Offline stand-in for `serde`.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate provides the two derive macros the codebase names —
//! `Serialize` and `Deserialize` — as no-ops. The repo only ever *derives*
//! the traits (no code calls `serialize`/`deserialize`), so expanding to
//! nothing keeps every type compiling while adding zero runtime surface.
//! Swapping in real serde later is a one-line Cargo.toml change per crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
