//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the benches in `crates/bench`
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: a warm-up run followed by `sample_size` timed
//! iterations, reporting the mean per-iteration time. No statistics, plots
//! or baselines; good enough to rank implementations and spot regressions
//! by eye or by script.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state (sample-size default mirrors criterion's spirit,
/// scaled down since there is no outlier analysis to feed).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", &id.into(), self.sample_size, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &id.into(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, mut f: F) {
    let mut b = Bencher {
        total_nanos: 0,
        iterations: 0,
    };
    f(&mut b); // warm-up
    b.total_nanos = 0;
    b.iterations = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.0.clone()
    } else {
        format!("{group}/{}", id.0)
    };
    println!("bench {label}: {:.1} ns/iter", b.mean_nanos());
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    total_nanos: u128,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.total_nanos += start.elapsed().as_nanos();
        self.iterations += 1;
    }

    /// Mean wall-clock nanoseconds per [`Bencher::iter`] call.
    pub fn mean_nanos(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.iterations as f64
        }
    }
}

/// Benchmark identifier (group + optional parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
