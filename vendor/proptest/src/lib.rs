//! Offline stand-in for `proptest`.
//!
//! Implements the subset the integration tests use: the `proptest!` macro
//! with `#![proptest_config(...)]`, range/tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop_map`, and
//! `prop_assert!`. Cases are generated from a deterministic per-case seed
//! (so failures reproduce exactly); there is no shrinking — a failing case
//! panics with its case index and message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Test-case failure raised by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for one test case.
pub fn test_rng(case: u64) -> StdRng {
    // Offset so case 0 does not reuse the raw SplitMix64 fixed point.
    StdRng::seed_from_u64(0xC0FF_EE00 ^ case.wrapping_mul(0x9E37_79B9))
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use super::super::Strategy;
        use rand::Rng;
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use super::super::Strategy;
        use rand::Rng;

        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `prop::option::of(strategy)`: `None` half the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
                if rng.gen_bool(0.5) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::test_rng(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest case {case}/{} failed: {e}", cfg.cases);
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn tuples_vectors_and_options_generate(
            items in prop::collection::vec((0u64..10, prop::option::of(0u8..4)), 1..20),
            seed in 0u64..100,
        ) {
            prop_assert!(!items.is_empty());
            prop_assert!(seed < 100);
            for (a, b) in &items {
                prop_assert!(*a < 10);
                if let Some(b) = b {
                    prop_assert!(*b < 4, "bad option value {}", b);
                }
            }
        }
    }
}
