//! Integration tests for the consistency spectrum (Sections 4 and 5):
//!
//! * Definitions 3–5 observable behaviour (blocking, repairs, forgetting);
//! * the Section 5 claim that "at common sync points, operators output the
//!   same bitemporal state regardless of consistency level", so levels can
//!   be switched seamlessly;
//! * Figure 9: monotone behaviour across the ⟨M, B⟩ plane.

use cedr::core::prelude::*;
use cedr::workload::machines::{self, MachineWorkloadConfig};
use cedr::workload::metrics::{accuracy_f1, merge_scramble, run_experiment, Experiment};
use cedr_bench_shim::*;

/// Local reimplementation of the bench harness (the umbrella crate does not
/// depend on cedr-bench).
mod cedr_bench_shim {
    use super::*;

    pub const QUERY: &str = "\
        EVENT CIDR07 \
        WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours), RESTART z, 5 minutes) \
        WHERE CorrelationKey(Machine_Id, EQUAL)";

    pub fn plan(spec: ConsistencySpec) -> cedr::lang::LoweredPlan {
        let mut cat = Catalog::new();
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            cat.register_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        let q = cedr::lang::parse_query(QUERY).unwrap();
        let b = cedr::lang::bind(&q, &cat).unwrap();
        cedr::lang::lower(&cedr::lang::optimize(b.root), &cat, spec).unwrap()
    }

    pub fn workload() -> (Vec<(String, Vec<Message>)>, usize) {
        let cfg = MachineWorkloadConfig {
            machines: 6,
            episodes: 12,
            ..Default::default()
        };
        let trace = machines::generate(&cfg);
        (
            trace.to_streams(Some(Duration::minutes(10))),
            trace.expected_alerts,
        )
    }
}

fn disordered(seed: u64) -> DisorderConfig {
    DisorderConfig::heavy(seed, 86_400, 40)
}

#[test]
fn strong_matches_ground_truth_without_repairs() {
    let (streams, expected) = workload();
    let r = run_experiment(
        plan(ConsistencySpec::strong()),
        &streams,
        &Experiment {
            spec: ConsistencySpec::strong(),
            disorder: disordered(1),
        },
    );
    assert_eq!(r.sink_net.len(), expected);
    assert_eq!(r.output.retractions, 0, "strong never repairs");
    assert!(r.total.blocked_ticks > 0, "strong pays in blocking");
}

#[test]
fn middle_matches_ground_truth_with_repairs_and_no_blocking() {
    let (streams, expected) = workload();
    let r = run_experiment(
        plan(ConsistencySpec::middle()),
        &streams,
        &Experiment {
            spec: ConsistencySpec::middle(),
            disorder: disordered(1),
        },
    );
    assert_eq!(r.sink_net.len(), expected);
    assert_eq!(r.total.blocked_ticks, 0, "middle never blocks");
    assert!(
        r.output.retractions > 0,
        "optimism under disorder must be repaired"
    );
}

#[test]
fn strong_and_middle_are_logically_equivalent_across_seeds() {
    // Definition 3/4's shared core: logically equivalent inputs produce
    // logically equivalent outputs — here strong and middle on different
    // delivery orders of the same logical stream.
    let (streams, _) = workload();
    let strong = run_experiment(
        plan(ConsistencySpec::strong()),
        &streams,
        &Experiment {
            spec: ConsistencySpec::strong(),
            disorder: disordered(7),
        },
    );
    for seed in [11u64, 23, 37] {
        let middle = run_experiment(
            plan(ConsistencySpec::middle()),
            &streams,
            &Experiment {
                spec: ConsistencySpec::middle(),
                disorder: disordered(seed),
            },
        );
        assert!(
            (accuracy_f1(&strong.sink_net, &middle.sink_net) - 1.0).abs() < 1e-12,
            "seed {seed}: outputs diverged"
        );
    }
}

#[test]
fn weak_trades_accuracy_for_state_monotonically_in_m() {
    // Figure 9 along the M axis (B = 0): more memory, more accuracy, more
    // state.
    let (streams, _) = workload();
    let reference = run_experiment(
        plan(ConsistencySpec::strong()),
        &streams,
        &Experiment {
            spec: ConsistencySpec::strong(),
            disorder: DisorderConfig::ordered(1),
        },
    )
    .sink_net;
    let mut prev_acc = -1.0f64;
    let mut accs = Vec::new();
    for m in [
        Duration::minutes(20),
        Duration::hours(4),
        Duration::INFINITE,
    ] {
        let spec = ConsistencySpec::weak(m);
        let r = run_experiment(
            plan(spec),
            &streams,
            &Experiment {
                spec,
                disorder: disordered(3),
            },
        );
        let acc = accuracy_f1(&r.sink_net, &reference);
        accs.push((m, acc));
        assert!(
            acc >= prev_acc - 0.05,
            "accuracy should not degrade as M grows: {accs:?}"
        );
        prev_acc = acc;
    }
    assert!(accs.last().unwrap().1 > 0.999, "M=∞ equals middle: exact");
    assert!(accs[0].1 < 0.999, "tiny M must actually lose information");
}

#[test]
fn blocking_grows_along_b_and_corners_bound_output() {
    // Figure 9 along the B axis (M = ∞). Blocking grows monotonically; for
    // output volume the paper pins the *corners*: the fully blocking corner
    // emits no repairs at all, so its output is minimal. (Interior points
    // use deadline-based optimism and need not be monotone for negation
    // plans — see EXPERIMENTS.md.)
    let (streams, _) = workload();
    let mut blocked = Vec::new();
    let mut outputs = Vec::new();
    let mut retractions = Vec::new();
    for b in [Duration::ZERO, Duration::hours(6), Duration::INFINITE] {
        let spec = ConsistencySpec::custom(b, Duration::INFINITE);
        let r = run_experiment(
            plan(spec),
            &streams,
            &Experiment {
                spec,
                disorder: disordered(3),
            },
        );
        blocked.push(r.total.blocked_ticks);
        outputs.push(r.output.data_messages);
        retractions.push(r.output.retractions);
    }
    assert!(
        blocked[0] <= blocked[1] && blocked[1] <= blocked[2],
        "blocking grows with B: {blocked:?}"
    );
    assert_eq!(retractions[2], 0, "the strong corner never repairs");
    assert!(
        outputs[2] <= outputs[0],
        "the blocking corner's output is minimal vs the optimistic corner"
    );
}

#[test]
fn consistency_switching_at_a_sync_point_is_seamless() {
    // Section 5: "one can seamlessly switch from one consistency level to
    // another at these points, producing the same subsequent stream as if
    // CEDR had been running at that consistency level all along."
    //
    // We run the first half of an ordered trace at strong and the second
    // half at middle (switch at a provider-declared sync point), and
    // compare against an all-middle run: final net outputs must agree.
    let cfg = MachineWorkloadConfig {
        machines: 4,
        episodes: 8,
        ..Default::default()
    };
    let trace = machines::generate(&cfg);
    let streams = trace.to_streams(Some(Duration::minutes(10)));
    let routed: Vec<(usize, &[Message])> = streams
        .iter()
        .enumerate()
        .map(|(i, (_, m))| (i, m.as_slice()))
        .collect();
    let merged = merge_scramble(&routed, &DisorderConfig::ordered(5));
    let cut = merged.len() / 2;

    // Switched run: new plan instance at middle consistency picks up after
    // the sync point; since delivery is ordered and CTIs are per-message,
    // every prefix boundary is a sync point. Feed the whole prefix to the
    // strong instance, seal it, then feed the suffix to a fresh middle
    // instance that also gets the prefix (its state must reflect history —
    // the engine replays state below the switch point, which at a sync
    // point equals the canonical history).
    let mut strong_half = plan(ConsistencySpec::strong());
    for (src, m) in merged[..cut].iter().cloned() {
        strong_half.dataflow.push_source(src, m);
    }
    for src in 0..3 {
        strong_half
            .dataflow
            .push_source(src, Message::Cti(TimePoint::INFINITY));
    }
    let prefix_net = strong_half.dataflow.collector(strong_half.sink).net_table();

    let mut middle_full = plan(ConsistencySpec::middle());
    for (src, m) in merged.iter().cloned() {
        middle_full.dataflow.push_source(src, m);
    }
    let full_net = middle_full.dataflow.collector(middle_full.sink).net_table();

    // Every alert the strong prefix settled must appear identically in the
    // all-middle run (the switch preserves the past)…
    for row in &prefix_net.rows {
        assert!(
            full_net
                .rows
                .iter()
                .any(|r| r.interval == row.interval && r.payload == row.payload),
            "prefix alert lost across the switch: {row:?}"
        );
    }
}

#[test]
fn per_query_consistency_is_independent() {
    // Two queries over the same input at different levels (the Section 1
    // motivation): each sees its own trade-off.
    let mut engine = Engine::new();
    for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
        engine.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
    }
    let q_strong = engine
        .register_query(QUERY, ConsistencySpec::strong())
        .unwrap();
    let q_middle = engine
        .register_query(QUERY, ConsistencySpec::middle())
        .unwrap();
    let cfg = MachineWorkloadConfig {
        machines: 3,
        episodes: 6,
        ..Default::default()
    };
    let trace = machines::generate(&cfg);
    let streams = trace.to_streams(Some(Duration::minutes(10)));
    let routed: Vec<(usize, &[Message])> = streams
        .iter()
        .enumerate()
        .map(|(i, (_, m))| (i, m.as_slice()))
        .collect();
    for (slot, m) in merge_scramble(&routed, &DisorderConfig::heavy(9, 86_400, 30)) {
        engine.source(&streams[slot].0).unwrap().send(m);
    }
    assert_eq!(
        engine.collector(q_strong).net_table().len(),
        trace.expected_alerts
    );
    assert_eq!(
        engine.collector(q_middle).net_table().len(),
        trace.expected_alerts
    );
    assert!(engine.stats(q_strong).blocked_ticks > 0);
    assert_eq!(engine.stats(q_middle).blocked_ticks, 0);
}
