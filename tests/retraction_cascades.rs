//! Retraction cascades through multi-operator plans: a provider retraction
//! at the source must propagate repairs through joins, windows and
//! aggregates so the final net content equals the denotational pipeline
//! applied to the final logical input — across delivery orders.

use cedr::algebra::expr::{CmpOp, Pred, Scalar};
use cedr::algebra::relational::AggFunc;
use cedr::core::prelude::*;
use cedr::workload::metrics::merge_scramble;

fn engine2() -> Engine {
    let mut e = Engine::new();
    e.register_event_type("L", vec![("k", FieldType::Int), ("v", FieldType::Int)]);
    e.register_event_type("R", vec![("k", FieldType::Int)]);
    e
}

/// join(L, R on k) → count grouped by k.
fn plan() -> cedr::lang::LogicalOp {
    PlanBuilder::source("L")
        .join(
            PlanBuilder::source("R"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan()
}

fn denotational(l: &[Event], r: &[Event]) -> cedr::temporal::UniTemporalTable {
    let joined = cedr::algebra::join(
        l,
        r,
        &Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
    );
    let agg = cedr::algebra::group_aggregate(&joined, &[Scalar::Field(0)], &AggFunc::Count);
    cedr::algebra::to_table(&agg)
}

#[test]
fn source_retraction_repairs_join_and_aggregate() {
    let mut e = engine2();
    let q = e
        .register_plan("cascade", plan(), ConsistencySpec::middle())
        .unwrap();
    // Two left events and one right event on key 1, overlapping.
    let l1 = e
        .event_with_interval("L", iv(0, 100), vec![Value::Int(1), Value::Int(10)])
        .unwrap();
    let l2 = e
        .event_with_interval("L", iv(20, 60), vec![Value::Int(1), Value::Int(20)])
        .unwrap();
    let r1 = e
        .event_with_interval("R", iv(10, 80), vec![Value::Int(1)])
        .unwrap();
    {
        let mut left = e.source("L").unwrap();
        left.insert_event(l1.clone()).unwrap();
        left.insert_event(l2.clone()).unwrap();
    }
    e.source("R").unwrap().insert_event(r1.clone()).unwrap();
    // Retract l1 down to [0, 30): the join outputs shrink, the counts
    // re-segment.
    e.source("L").unwrap().retract(l1.clone(), t(30));
    e.seal();

    let lf = vec![l1.shortened(t(30)), l2];
    let rf = vec![r1];
    let want = denotational(&lf, &rf);
    let got = e.collector(q).net_table();
    assert!(
        got.star_equal(&want),
        "cascade diverged:\n got {got:?}\nwant {want:?}"
    );
    assert!(
        e.stats(q).out_retractions > 0,
        "repairs must actually flow through the plan"
    );
}

fn iv(a: u64, b: u64) -> Interval {
    cedr::temporal::interval::iv(a, b)
}

#[test]
fn full_removal_erases_all_derived_state() {
    let mut e = engine2();
    let q = e
        .register_plan("cascade", plan(), ConsistencySpec::middle())
        .unwrap();
    let l1 = e
        .event_with_interval("L", iv(0, 50), vec![Value::Int(7), Value::Int(1)])
        .unwrap();
    let r1 = e
        .event_with_interval("R", iv(0, 50), vec![Value::Int(7)])
        .unwrap();
    e.source("L").unwrap().insert_event(l1.clone()).unwrap();
    e.source("R").unwrap().insert_event(r1).unwrap();
    e.run_to_quiescence();
    assert!(!e.collector(q).net_table().is_empty());
    // Remove the left event entirely: everything derived must vanish.
    e.source("L").unwrap().retract(l1, t(0));
    e.seal();
    assert!(
        e.collector(q).net_table().is_empty(),
        "derived state must be fully erased"
    );
}

#[test]
fn cascades_are_delivery_order_insensitive() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);

    // Build one logical input with retractions.
    let mut levents = Vec::new();
    let mut revents = Vec::new();
    let mut lstream = StreamBuilder::with_id_base(0);
    let mut rstream = StreamBuilder::with_id_base(10_000);
    for i in 0..25u64 {
        let k = rng.gen_range(0..3i64);
        let vs = rng.gen_range(0..120u64);
        let len = rng.gen_range(5..40u64);
        if i % 2 == 0 {
            let ev = lstream.insert(
                iv(vs, vs + len),
                Payload::from_values(vec![Value::Int(k), Value::Int(i as i64)]),
            );
            if rng.gen_bool(0.4) {
                let keep = rng.gen_range(0..=len);
                lstream.retract(ev.clone(), t(vs + keep));
                let ne = ev.shortened(t(vs + keep));
                if !ne.interval.is_empty() {
                    levents.push(ne);
                }
            } else {
                levents.push(ev);
            }
        } else {
            let ev = rstream.insert(iv(vs, vs + len), Payload::from_values(vec![Value::Int(k)]));
            revents.push(ev);
        }
    }
    let want = denotational(&levents, &revents);

    let streams = [
        ("L".to_string(), lstream.build_ordered(Some(dur(10)), true)),
        ("R".to_string(), rstream.build_ordered(Some(dur(10)), true)),
    ];
    for seed in [3u64, 17, 99] {
        let mut e = engine2();
        let q = e
            .register_plan("cascade", plan(), ConsistencySpec::middle())
            .unwrap();
        let routed: Vec<(usize, &[Message])> = streams
            .iter()
            .enumerate()
            .map(|(i, (_, m))| (i, m.as_slice()))
            .collect();
        for (slot, m) in merge_scramble(&routed, &DisorderConfig::heavy(seed, 70, 8)) {
            e.source(&streams[slot].0).unwrap().send(m);
        }
        let got = e.collector(q).net_table();
        assert!(
            got.star_equal(&want),
            "seed {seed}: cascade diverged from denotational pipeline"
        );
    }
}
