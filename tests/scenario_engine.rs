//! Tier-1 coverage for the adversarial scenario engine and the
//! consistency matrix harness (`cedr-workload`): generation determinism,
//! dial monotonicity, silence observability through the pump, and one
//! full matrix cell (pin-then-measure) end to end.

use cedr::core::prelude::*;
use cedr::workload::matrix::{drive_leg, run_matrix, FAMILIES, LEGS};
use cedr::workload::scenario::{gallery, ScenarioConfig, Silence};

/// Same config ⇒ byte-equal trace: structural equality, equal
/// fingerprints, and byte-equal debug rendering (the strongest form —
/// what the committed report's regeneration rests on).
#[test]
fn scenario_generation_is_byte_deterministic() {
    for cfg in gallery(0xD0_0D) {
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b, "{} diverged structurally", cfg.name);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            format!("{:?}", a.scripts),
            format!("{:?}", b.scripts),
            "{} diverged at the byte level",
            cfg.name
        );
        assert_eq!(a.characterize(), b.characterize());
    }
}

/// Turning the disorder dial must *measurably* deepen disorder — the
/// characterization reports what the trace is, not what was asked for.
#[test]
fn disorder_dial_is_monotone_in_measured_disorder() {
    let at = |max_delay: u64| {
        ScenarioConfig {
            disorder: max_delay,
            ..ScenarioConfig::tame("dial", 0x5EED)
        }
        .generate()
        .profile()
    };
    let (calm, mid, storm) = (at(0), at(12), at(48));
    assert_eq!(calm.inversion_frac, 0.0);
    assert!(
        mid.inversion_frac > calm.inversion_frac,
        "mid {:?} !> calm {:?}",
        mid.inversion_frac,
        calm.inversion_frac
    );
    assert!(
        storm.inversion_frac > mid.inversion_frac,
        "storm {:?} !> mid {:?}",
        storm.inversion_frac,
        mid.inversion_frac
    );
    assert!(storm.max_jump > mid.max_jump);
}

/// A silent producer must be *observable* through the pump: nonzero
/// `rounds_stalled` and a `waiting_on` key while the other lanes run
/// ahead — and the stall must clear once the producer resumes (the run
/// drains and seals).
#[test]
fn producer_silence_is_observed_as_pump_stalls() {
    let cfg = ScenarioConfig {
        silence: Some(Silence {
            producer: 1,
            from_round: 2,
            rounds: 5,
        }),
        events_per_producer: 24,
        ..ScenarioConfig::tame("quiet", 0xAB)
    };
    let run = drive_leg(&cfg.generate(), ConsistencySpec::middle(), 1, true, true);
    assert!(run.stall_rounds_peak > 0, "no stall observed");
    assert!(!run.waited_on.is_empty(), "waiting_on never reported");
    let snap = run.engine.metrics();
    let channel = snap.counters.channel.expect("channel metrics");
    assert!(channel.rounds_admitted > 0, "the stall must clear");
    assert_eq!(channel.waiting_on, None, "sealed run still waiting");
}

/// One matrix cell end to end: the bit-identity pin across all four
/// engine legs passes, and the measured spectrum has the paper's shape.
#[test]
fn matrix_cell_smoke() {
    let cfg = ScenarioConfig {
        events_per_producer: 20,
        disorder: 12,
        retraction_rate: 0.2,
        ..ScenarioConfig::tame("smoke", 0x51_0E)
    };
    let report = run_matrix(0x51_0E, &[cfg]);
    // 3 levels × (LEGS - canonical) × 5 families.
    assert_eq!(
        report.identity_checks,
        3 * (LEGS.len() - 1) * FAMILIES.len()
    );
    let s = &report.scenarios[0];
    let strong = &s.levels[0];
    let middle = &s.levels[1];
    let weak = &s.levels[2];
    assert!(strong.cells.iter().any(|c| c.blocked_ticks > 0));
    assert!(middle.cells.iter().all(|c| c.blocked_ticks == 0));
    assert!(middle.cells.iter().any(|c| c.retractions > 0));
    assert!(middle
        .cells
        .iter()
        .all(|c| (c.accuracy_vs_strong - 1.0).abs() < 1e-9));
    assert!(weak.cells.iter().map(|c| c.forgotten).sum::<u64>() > 0);
    assert!(weak.cells.iter().any(|c| c.accuracy_vs_strong < 1.0));
}
