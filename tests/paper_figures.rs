//! Integration tests that re-assert every worked example in the paper
//! through the public API (the crate-level unit tests assert them at the
//! module level; here we go through the `cedr` umbrella).

use cedr::temporal::interval::{iv, iv_inf};
use cedr::temporal::time::t;
use cedr::temporal::{
    logically_equivalent_at, logically_equivalent_to, BiTemporalTable, EquivalenceOptions,
    HistoryTable, TimePoint, UniTemporalTable,
};

#[test]
fn figure1_bitemporal_stream() {
    let tbl = BiTemporalTable::figure1();
    assert_eq!(tbl.len(), 4);
    // "at time 2, e0's validity interval is modified to [1, 10)"
    let mods = tbl.modification_events(cedr::temporal::EventId(0));
    assert_eq!(mods[0].valid, iv(1, 10));
    // "at time 3 … e1 is inserted with validity interval [4, 9)"
    let ins = tbl.insert_event(cedr::temporal::EventId(1)).unwrap();
    assert_eq!(ins.valid, iv(4, 9));
    assert_eq!(ins.occurrence, iv_inf(3));
}

#[test]
fn figure2_retraction_and_modification_narrative() {
    let tbl = HistoryTable::figure2();
    // "at CEDR time 3, the stream … contains two events, an insert and a
    // modification that changes the valid time at occurrence time 5."
    // "At CEDR time 7, the stream describes the same valid time change,
    // except at occurrence time 3 instead of 5."
    let final_state = tbl.ideal();
    assert_eq!(final_state.len(), 2);
    assert_eq!(final_state.rows[0].occurrence, iv(1, 3));
    assert_eq!(final_state.rows[1].occurrence, iv_inf(3));
    assert_eq!(final_state.rows[1].valid, iv(1, 10));
}

#[test]
fn figures_3_to_5_canonicalisation_chain() {
    let left = HistoryTable::figure3_left();
    let right = HistoryTable::figure3_right();
    // Figure 4: reduction.
    assert_eq!(left.reduce().rows[0].occurrence, iv(1, 3));
    assert_eq!(right.reduce().rows[0].occurrence, iv(1, 5));
    // Figure 5: canonical to 3 — equal tables.
    let cl = left.canonical_to(t(3));
    let cr = right.canonical_to(t(3));
    assert_eq!(cl.rows[0].occurrence, cr.rows[0].occurrence);
    // "the two streams … are logically equivalent to 3 and at 3."
    let opts = EquivalenceOptions::definition1();
    assert!(logically_equivalent_to(&left, &right, t(3), opts));
    assert!(logically_equivalent_at(&left, &right, t(3), opts));
    assert!(!logically_equivalent_to(
        &left,
        &right,
        TimePoint::INFINITY,
        opts
    ));
}

#[test]
fn figure6_sync_points() {
    let ann = HistoryTable::figure6().annotate();
    assert_eq!(ann[0].sync, t(1));
    assert_eq!(ann[1].sync, t(5));
    let pts = cedr::temporal::sync_points(&ann);
    assert!(pts.contains(&cedr::temporal::SyncPoint {
        occurrence: t(5),
        cedr: t(7)
    }));
}

#[test]
fn figure10_unitemporal_table() {
    let tbl = UniTemporalTable::figure10();
    assert_eq!(tbl.rows[0].interval, iv(1, 5));
    assert_eq!(tbl.rows[1].interval, iv(4, 9));
    // Join of the two rows overlaps on [4,5) — Definition 9's worked shape.
    let joined = cedr::algebra::join(
        &cedr::algebra::from_table(&tbl)[0..1],
        &cedr::algebra::from_table(&tbl)[1..2],
        &cedr::algebra::Pred::True,
    );
    assert_eq!(joined.len(), 1);
    assert_eq!(joined[0].interval, iv(4, 5));
}

#[test]
fn figure_regeneration_binaries_produce_reports() {
    // The fig01..fig10 binaries are thin wrappers over these functions;
    // running them here keeps the regeneration path tested end to end.
    assert!(cedr_bench_smoke::fig_smoke());
}

mod cedr_bench_smoke {
    // cedr-bench is a workspace member but not a dependency of the umbrella
    // crate; smoke-test equivalent logic through the public API instead.
    use cedr::core::prelude::*;

    pub fn fig_smoke() -> bool {
        let mut engine = Engine::new();
        engine.register_event_type("X", vec![("v", FieldType::Int)]);
        let q = engine
            .register_query(
                "EVENT S WHEN SEQUENCE(X a, X b, 10 seconds)",
                ConsistencySpec::middle(),
            )
            .unwrap();
        let mut src = engine.source("X").unwrap();
        src.insert(1, vec![Value::Int(1)]).unwrap();
        src.insert(4, vec![Value::Int(2)]).unwrap();
        drop(src);
        engine.seal();
        engine.collector(q).stats().inserts == 1
    }
}
