//! View update compliance (Definition 11) checked END TO END through the
//! physical runtime: the same coalesced input state, packaged differently
//! into events, must drive view-update-compliant operators to `*`-equal
//! outputs — while AlterLifetime-derived operators legitimately diverge.
//!
//! This extends the denotational checks in `cedr-algebra::compliance` to
//! the incremental operators, including their retraction handling.

use cedr::algebra::compliance::{chop_event, fixture_events};
use cedr::algebra::expr::{CmpOp, Pred, Scalar};
use cedr::algebra::relational::AggFunc;
use cedr::runtime::prelude::*;
use cedr::streams::{Collector, StreamBuilder};
use cedr::temporal::time::dur;
use cedr::temporal::{Event, UniTemporalTable};
use proptest::prelude::*;

fn run_packaging(module: Box<dyn OperatorModule>, events: &[Event]) -> UniTemporalTable {
    let mut b = StreamBuilder::new();
    for e in events {
        b.insert_event(e.clone());
    }
    let mut shell = OperatorShell::new(module, ConsistencySpec::middle());
    let mut c = Collector::new();
    for (i, m) in b.build_ordered(Some(dur(10)), true).into_iter().enumerate() {
        c.push_all(shell.push(0, m, i as u64));
    }
    c.net_table()
}

fn repackaged(events: &[Event], salt: usize) -> Vec<Event> {
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        out.extend(chop_event(e, 1 + (i + salt) % 3));
    }
    out
}

#[test]
fn physical_selection_is_view_update_compliant() {
    let events = fixture_events(30, 80, 8);
    let pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(3i64));
    let reference = run_packaging(Box::new(SelectOp::new(pred.clone())), &events);
    for salt in 1..4 {
        let alt = run_packaging(
            Box::new(SelectOp::new(pred.clone())),
            &repackaged(&events, salt),
        );
        assert!(
            reference.star_equal(&alt),
            "selection output depended on event packaging (salt {salt})"
        );
    }
}

#[test]
fn physical_aggregate_is_view_update_compliant() {
    let events = fixture_events(24, 60, 5);
    let mk = || {
        Box::new(GroupAggregateOp::new(
            vec![Scalar::Field(0)],
            AggFunc::Count,
        ))
    };
    let reference = run_packaging(mk(), &events);
    for salt in 1..4 {
        let alt = run_packaging(mk(), &repackaged(&events, salt));
        assert!(
            reference.star_equal(&alt),
            "aggregate not packaging-insensitive"
        );
    }
}

#[test]
fn physical_window_is_not_view_update_compliant_but_well_behaved() {
    // One long event vs the same payload chopped: W_5 must differ (the
    // paper's central observation about windows) …
    let long = vec![Event::primitive(
        cedr::temporal::EventId(1),
        cedr::temporal::interval::iv(0, 30),
        cedr::temporal::Payload::empty(),
    )];
    let chopped = repackaged(&long, 1);
    assert!(cedr::algebra::to_table(&long).star_equal(&cedr::algebra::to_table(&chopped)));
    let a = run_packaging(Box::new(AlterLifetimeOp::window(dur(5))), &long);
    let b = run_packaging(Box::new(AlterLifetimeOp::window(dur(5))), &chopped);
    assert!(
        !a.star_equal(&b),
        "W_5 must expose packaging (Def 11 fails)"
    );
    // … yet each packaging individually converges to its denotational
    // value (well-behavedness, Def 6).
    let want_a = cedr::algebra::to_table(&cedr::algebra::moving_window(&long, dur(5)));
    assert!(a.star_equal(&want_a));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compliance_holds_under_random_fixtures(n in 5u64..40, kinds in 1u64..8, salt in 1usize..5) {
        let events = fixture_events(n, 64, kinds);
        let pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(1i64));
        let reference = run_packaging(Box::new(SelectOp::new(pred.clone())), &events);
        let alt = run_packaging(Box::new(SelectOp::new(pred)), &repackaged(&events, salt));
        prop_assert!(reference.star_equal(&alt));
    }
}
