//! Sessioned I/O correctness: the `SourceHandle`/`Subscription` surface
//! must be a *view change*, not a semantics change.
//!
//! * A subscription's drained `OutputDelta` stream equals the collector's
//!   stamped tape **bit for bit** — same entries, same order, same CEDR
//!   times — across seeds × Strong/Middle/Weak (loose and biting horizon)
//!   × worker counts, including mid-stream cursor resume after partial
//!   drains.
//! * Handle ingestion is bit-identical to the deprecated string-keyed
//!   shims at matching granularity (per-message `send` ≡ `push`, staged
//!   `stage_batch`+`flush` ≡ `enqueue_batch`).

use cedr::core::prelude::*;
use cedr::streams::{scramble, MessageBatch};
use cedr::temporal::time::{dur, t};

/// Three plans covering all five operator families (stateless, aggregate,
/// join, sequence, negation).
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    for ty in ["A_T", "B_T", "C_T"] {
        engine.register_event_type(ty, vec![("val", FieldType::Int)]);
    }
    let sel_agg = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("A_T")
        .join(
            PlanBuilder::source("B_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    let seq_unless = PlanBuilder::sequence(
        vec![PlanBuilder::source("A_T"), PlanBuilder::source("B_T")],
        dur(40),
        Pred::True,
    )
    .unless(PlanBuilder::source("C_T"), dur(20), Pred::True)
    .into_plan();
    vec![
        engine.register_plan("sel_agg", sel_agg, spec).unwrap(),
        engine.register_plan("join", join, spec).unwrap(),
        engine
            .register_plan("seq_unless", seq_unless, spec)
            .unwrap(),
    ]
}

/// A deterministic out-of-order workload with retractions, as one
/// interleaved `(type, message)` tape.
fn workload(seed: u64) -> Vec<(&'static str, Message)> {
    let mut streams = Vec::new();
    for (ti, ty) in ["A_T", "B_T", "C_T"].iter().enumerate() {
        let mut b = StreamBuilder::with_id_base(10_000 * ti as u64);
        for i in 0..40u64 {
            let vs = (i * 7 + ti as u64 * 3) % 200;
            let len = 5 + (i * 11 + ti as u64) % 30;
            let e = b.insert(
                Interval::new(t(vs), t(vs + len)),
                Payload::from_values(vec![Value::Int((i % 3) as i64)]),
            );
            if i % 4 == ti as u64 % 4 {
                let keep = if i % 8 == ti as u64 % 8 { 0 } else { len / 2 };
                b.retract(e.clone(), e.vs() + dur(keep));
            }
        }
        let ordered = b.build_ordered(Some(dur(10)), true);
        let scrambled = scramble(&ordered, &DisorderConfig::heavy(seed ^ ti as u64, 35, 5));
        streams.push((*ty, scrambled));
    }
    let mut tape = Vec::new();
    let mut idx = [0usize; 3];
    loop {
        let mut progressed = false;
        for (s, (ty, msgs)) in streams.iter().enumerate() {
            if idx[s] < msgs.len() {
                tape.push((*ty, msgs[idx[s]].clone()));
                idx[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            return tape;
        }
    }
}

/// Re-derive the expected delta stream from the stamped tape — an
/// *independent* mapping, so the test pins the two logs against each
/// other rather than trusting either.
fn expected_deltas(c: &Collector) -> Vec<OutputDelta> {
    c.stamped()
        .iter()
        .map(|s| match &s.message {
            Message::Insert(e) => OutputDelta::Insert {
                cedr_time: s.cedr_time,
                event: e.clone(),
            },
            Message::Retract(r) => OutputDelta::Retract {
                cedr_time: s.cedr_time,
                event: r.event.clone(),
                new_end: r.new_end,
            },
            Message::Cti(g) => OutputDelta::Cti {
                cedr_time: s.cedr_time,
                guarantee: *g,
            },
        })
        .collect()
}

type LevelSpec = fn() -> ConsistencySpec;

const LEVELS: [(LevelSpec, &str); 4] = [
    (ConsistencySpec::strong, "strong"),
    (ConsistencySpec::middle, "middle"),
    (|| ConsistencySpec::weak(dur(100_000)), "weak"),
    (|| ConsistencySpec::weak(dur(20)), "weak-biting"),
];

/// Subscriptions drained incrementally — partial `take` cuts of varying
/// width interleaved with chunked handle ingestion, cursor resume after
/// every cut — reconstruct exactly the collector's stamped tape, at every
/// level, seed, and worker count.
#[test]
fn subscription_deltas_match_stamped_bit_for_bit() {
    for (spec, level) in LEVELS {
        for seed in [0x5E55_u64, 0x10CA1] {
            for threads in [1usize, 4] {
                let mut engine = Engine::with_config(EngineConfig::threaded(threads));
                let qs = register_queries(&mut engine, spec());
                let mut subs: Vec<Subscription> =
                    qs.iter().map(|q| engine.subscribe(*q).unwrap()).collect();
                let mut collected: Vec<Vec<OutputDelta>> = vec![Vec::new(); qs.len()];

                let tape = workload(seed);
                // Vary both the ingestion chunking and the drain width
                // deterministically per round.
                let mut cut = (seed as usize % 5) + 1;
                for chunk in tape.chunks(16) {
                    for ty in ["A_T", "B_T", "C_T"] {
                        let batch: MessageBatch = chunk
                            .iter()
                            .filter(|(t, _)| *t == ty)
                            .map(|(_, m)| m.clone())
                            .collect();
                        if !batch.is_empty() {
                            engine.source(ty).unwrap().stage_batch(&batch);
                        }
                    }
                    engine.run_to_quiescence();
                    // Partial drains: consume at most `cut` deltas per
                    // query this round; the rest stays for later polls.
                    for (sub, got) in subs.iter_mut().zip(collected.iter_mut()) {
                        let before = sub.position();
                        let drained = sub.take(&engine, cut);
                        assert_eq!(sub.position(), before + drained.len());
                        got.extend(drained.iter().cloned());
                    }
                    cut = cut % 7 + 1;
                }
                engine.seal();
                for (sub, got) in subs.iter_mut().zip(collected.iter_mut()) {
                    got.extend(sub.poll(&mut engine).iter().cloned());
                    assert_eq!(sub.pending(&engine), 0, "poll must drain to the end");
                }

                for ((q, sub), got) in qs.iter().zip(&subs).zip(&collected) {
                    let want = expected_deltas(engine.collector(*q));
                    assert_eq!(
                        got,
                        &want,
                        "{level}/seed {seed:#x}/threads {threads}: {} subscription \
                         diverged from the stamped tape",
                        engine.query_name(*q),
                    );
                    assert_eq!(sub.position(), want.len());
                }
            }
        }
    }
}

/// A consumer that subscribes mid-stream, skips history, and resumes
/// across further ingestion sees exactly the suffix of the change stream.
#[test]
fn mid_stream_subscription_resume() {
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let q = qs[0];
    let tape = workload(0xACE);
    let (first, rest) = tape.split_at(tape.len() / 2);

    let feed = |engine: &mut Engine, part: &[(&'static str, Message)]| {
        for ty in ["A_T", "B_T", "C_T"] {
            let batch: MessageBatch = part
                .iter()
                .filter(|(t, _)| *t == ty)
                .map(|(_, m)| m.clone())
                .collect();
            if !batch.is_empty() {
                engine.source(ty).unwrap().stage_batch(&batch);
            }
        }
        engine.run_to_quiescence();
    };

    feed(&mut engine, first);
    // Late consumer: skip everything logged so far.
    let mut late = engine.subscribe(q).unwrap();
    let skipped = engine.collector(q).delta_log().len();
    late.skip_to_end(&engine);
    assert_eq!(late.position(), skipped);
    assert!(late.poll(&mut engine).is_empty());

    feed(&mut engine, rest);
    engine.seal();
    let suffix: Vec<OutputDelta> = late.poll(&mut engine).to_vec();
    assert_eq!(
        suffix.as_slice(),
        &expected_deltas(engine.collector(q))[skipped..],
        "resumed cursor must observe exactly the suffix"
    );

    // And a from-the-start subscription still sees everything, including
    // through the callback sink.
    let mut full = engine.subscribe(q).unwrap();
    let mut seen = 0usize;
    let n = full.for_each(&mut engine, |_| seen += 1);
    assert_eq!(n, seen);
    assert_eq!(n, engine.collector(q).delta_log().len());
}

/// A sink that panics mid-drain loses nothing: the cursor advances only
/// after each callback returns, so the failed delta (and everything
/// after it) is re-delivered on the next drain.
#[test]
fn for_each_redelivers_after_a_panicking_sink() {
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let q = qs[0];
    for ty in ["A_T", "B_T", "C_T"] {
        let batch: MessageBatch = workload(0xD1E)
            .iter()
            .filter(|(t, _)| *t == ty)
            .map(|(_, m)| m.clone())
            .collect();
        engine.source(ty).unwrap().stage_batch(&batch);
    }
    engine.seal();
    let total = engine.collector(q).delta_log().len();
    assert!(
        total > 2,
        "need several deltas for the test to mean anything"
    );

    let mut sub = engine.subscribe(q).unwrap();
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut n = 0;
        sub.for_each(&mut engine, |_| {
            n += 1;
            if n == 2 {
                panic!("sink failed");
            }
        });
    }));
    assert!(unwound.is_err());
    assert_eq!(sub.position(), 1, "cursor must stay at the failed delta");
    assert_eq!(
        sub.poll(&mut engine).len(),
        total - 1,
        "retry re-delivers the failed delta and the rest"
    );
}

/// Handle ingestion is bit-identical to the deprecated shims at matching
/// granularity: `send` per message ≡ `push` per message, and chunked
/// `stage_batch`+drain ≡ chunked `enqueue_batch`+drain.
#[test]
#[allow(deprecated)]
fn handle_paths_match_shim_paths_bit_for_bit() {
    for (spec, level) in LEVELS {
        let tape = workload(0xB17);

        // Per-message granularity.
        let mut shim = Engine::new();
        let qs_shim = register_queries(&mut shim, spec());
        for (ty, m) in &tape {
            shim.push(ty, m.clone()).unwrap();
        }
        shim.seal();

        let mut sessioned = Engine::new();
        let qs_sess = register_queries(&mut sessioned, spec());
        for (ty, m) in &tape {
            sessioned.source(ty).unwrap().send(m.clone());
        }
        sessioned.seal();

        for (a, b) in qs_shim.iter().zip(qs_sess.iter()) {
            assert_eq!(
                shim.collector(*a).stamped(),
                sessioned.collector(*b).stamped(),
                "{level}: per-message handle path diverged from push shim"
            );
            assert_eq!(shim.stats(*a), sessioned.stats(*b));
        }

        // Chunked/staged granularity.
        let feed_chunks = |engine: &mut Engine, staged: bool| {
            for chunk in tape.chunks(16) {
                for ty in ["A_T", "B_T", "C_T"] {
                    let batch: MessageBatch = chunk
                        .iter()
                        .filter(|(t, _)| *t == ty)
                        .map(|(_, m)| m.clone())
                        .collect();
                    if batch.is_empty() {
                        continue;
                    }
                    if staged {
                        engine.source(ty).unwrap().stage_batch(&batch);
                    } else {
                        engine.enqueue_batch(ty, &batch).unwrap();
                    }
                }
                engine.run_to_quiescence();
            }
            engine.seal();
        };
        let mut enq = Engine::new();
        let qs_enq = register_queries(&mut enq, spec());
        feed_chunks(&mut enq, false);
        let mut hnd = Engine::new();
        let qs_hnd = register_queries(&mut hnd, spec());
        feed_chunks(&mut hnd, true);
        for (a, b) in qs_enq.iter().zip(qs_hnd.iter()) {
            assert_eq!(
                enq.collector(*a).stamped(),
                hnd.collector(*b).stamped(),
                "{level}: staged handle path diverged from enqueue_batch"
            );
        }
    }
}

/// Backpressure integration: a tiny ingress bound forces blocking flushes
/// mid-stream, and the result is still bit-identical to an unbounded run.
#[test]
fn bounded_ingress_preserves_results() {
    let run = |capacity: usize| {
        let mut engine =
            Engine::with_config(EngineConfig::serial().with_ingress_capacity(capacity));
        let qs = register_queries(&mut engine, ConsistencySpec::middle());
        for chunk in workload(0xF10).chunks(16) {
            for ty in ["A_T", "B_T", "C_T"] {
                let batch: MessageBatch = chunk
                    .iter()
                    .filter(|(t, _)| *t == ty)
                    .map(|(_, m)| m.clone())
                    .collect();
                if !batch.is_empty() {
                    // Blocking flush: drains the engine whenever the tiny
                    // ingress fills, then admits.
                    engine.source(ty).unwrap().stage_batch(&batch);
                }
            }
            engine.run_to_quiescence();
        }
        engine.seal();
        (engine, qs)
    };
    let (tight, qs_t) = run(4);
    let (loose, qs_l) = run(1 << 20);
    for (a, b) in qs_t.iter().zip(qs_l.iter()) {
        assert!(
            tight
                .collector(*a)
                .net_table()
                .star_equal(&loose.collector(*b).net_table()),
            "backpressure drains changed the logical output"
        );
    }
}
