//! Batch-vs-single-event equivalence of the execution core.
//!
//! The batch-at-a-time scheduler is a *physical* optimisation: cutting a
//! stream into batches must not change the logical (net) content of any
//! query's output at any consistency level. These tests drive the same
//! scrambled, retraction-bearing input through two engines — one fed one
//! message at a time, one fed whole per-type batches — across queries
//! covering all five operator families (stateless, aggregate, join,
//! sequence, negation), and assert the sealed outputs coincide at
//! Strong, Middle and Weak consistency.

use cedr::core::prelude::*;
use cedr::streams::{scramble, DisorderConfig, MessageBatch};
use cedr::temporal::time::{dur, t};

/// Register the same three plans (five operator families) on an engine.
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    for ty in ["A_T", "B_T", "C_T"] {
        engine.register_event_type(ty, vec![("val", FieldType::Int)]);
    }
    let sel_agg = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("A_T")
        .join(
            PlanBuilder::source("B_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    let seq_unless = PlanBuilder::sequence(
        vec![PlanBuilder::source("A_T"), PlanBuilder::source("B_T")],
        dur(40),
        Pred::True,
    )
    .unless(PlanBuilder::source("C_T"), dur(20), Pred::True)
    .into_plan();
    vec![
        engine.register_plan("sel_agg", sel_agg, spec).unwrap(),
        engine.register_plan("join", join, spec).unwrap(),
        engine
            .register_plan("seq_unless", seq_unless, spec)
            .unwrap(),
    ]
}

/// A deterministic out-of-order workload: per-type scrambled streams with
/// retractions, interleaved round-robin into one `(type, message)` tape.
fn workload(seed: u64) -> Vec<(&'static str, Message)> {
    let mut streams = Vec::new();
    for (ti, ty) in ["A_T", "B_T", "C_T"].iter().enumerate() {
        let mut b = StreamBuilder::with_id_base(10_000 * ti as u64);
        for i in 0..40u64 {
            // Deterministic but irregular placements per type.
            let vs = (i * 7 + ti as u64 * 3) % 200;
            let len = 5 + (i * 11 + ti as u64) % 30;
            let e = b.insert(
                Interval::new(t(vs), t(vs + len)),
                Payload::from_values(vec![Value::Int((i % 3) as i64)]),
            );
            if i % 4 == ti as u64 % 4 {
                // Retract a quarter of them, some fully.
                let keep = if i % 8 == ti as u64 % 8 { 0 } else { len / 2 };
                b.retract(e.clone(), e.vs() + dur(keep));
            }
        }
        let ordered = b.build_ordered(Some(dur(10)), true);
        let scrambled = scramble(&ordered, &DisorderConfig::heavy(seed ^ ti as u64, 35, 5));
        streams.push((*ty, scrambled));
    }
    // Round-robin interleave, preserving each type's (disordered) order.
    let mut tape = Vec::new();
    let mut idx = [0usize; 3];
    loop {
        let mut progressed = false;
        for (s, (ty, msgs)) in streams.iter().enumerate() {
            if idx[s] < msgs.len() {
                tape.push((*ty, msgs[idx[s]].clone()));
                idx[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            return tape;
        }
    }
}

/// Drive the tape one message at a time (deliberately through the
/// deprecated string-keyed shim, so the equivalence suite keeps pinning
/// the shim path against the sessioned one).
#[allow(deprecated)]
fn run_single(spec: ConsistencySpec, tape: &[(&'static str, Message)]) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, spec);
    for (ty, m) in tape {
        engine.push(ty, m.clone()).unwrap();
    }
    engine.seal();
    (engine, qs)
}

/// Drive the tape as one staged batch per event type, drained in one go.
fn run_batched(spec: ConsistencySpec, tape: &[(&'static str, Message)]) -> (Engine, Vec<QueryId>) {
    run_batched_threads(spec, tape, Engine::new())
}

/// Same staging, explicit engine (worker-thread configurations).
fn run_batched_threads(
    spec: ConsistencySpec,
    tape: &[(&'static str, Message)],
    mut engine: Engine,
) -> (Engine, Vec<QueryId>) {
    let qs = register_queries(&mut engine, spec);
    for ty in ["A_T", "B_T", "C_T"] {
        let batch: MessageBatch = tape
            .iter()
            .filter(|(t, _)| *t == ty)
            .map(|(_, m)| m.clone())
            .collect();
        engine.enqueue_batch(ty, &batch).unwrap();
    }
    engine.run_to_quiescence();
    engine.seal();
    (engine, qs)
}

fn assert_equivalent(spec: ConsistencySpec, level: &str) {
    let tape = workload(0xBA7C4);
    let (single, qs_s) = run_single(spec, &tape);
    let (batched, qs_b) = run_batched(spec, &tape);
    for (qs, qb) in qs_s.iter().zip(qs_b.iter()) {
        let net_s = single.collector(*qs).net_table();
        let net_b = batched.collector(*qb).net_table();
        assert!(
            net_s.star_equal(&net_b),
            "{level}/{}: single {:?} != batched {:?}",
            single.query_name(*qs),
            net_s,
            net_b,
        );
        assert_eq!(
            single.collector(*qs).max_cti(),
            batched.collector(*qb).max_cti(),
            "{level}/{}: output guarantee diverged",
            single.query_name(*qs),
        );
    }
}

#[test]
fn batched_ingestion_matches_single_at_strong() {
    assert_equivalent(ConsistencySpec::strong(), "strong");
}

#[test]
fn batched_ingestion_matches_single_at_middle() {
    assert_equivalent(ConsistencySpec::middle(), "middle");
}

#[test]
fn batched_ingestion_matches_single_at_weak() {
    // A memory bound comfortably above the workload's span: weak behaves
    // like middle here, so equivalence is exact. (With a *biting* horizon,
    // weak is deliberately lossy and batch boundaries may legitimately
    // change which repairs are forgotten.)
    assert_equivalent(ConsistencySpec::weak(dur(100_000)), "weak");
}

#[test]
fn weak_with_biting_horizon_forgets_identically_at_the_monitor() {
    // Under a horizon that actually bites, *module*-level purge cadence
    // legitimately differs between batch boundaries and per-message
    // delivery (weak is lossy by contract). But the consistency monitor
    // admits messages one at a time in both modes, so with identical
    // per-stream admission order the monitor must forget exactly the same
    // messages. The single-source query isolates that order.
    let spec = ConsistencySpec::weak(dur(20));
    let tape = workload(0xD00F);
    let (single, qs_s) = run_single(spec, &tape);
    let (batched, qs_b) = run_batched(spec, &tape);
    let (fs, fb) = (
        single.stats(qs_s[0]).forgotten,
        batched.stats(qs_b[0]).forgotten,
    );
    assert!(fs > 0, "horizon must bite for this test to mean anything");
    assert_eq!(fs, fb, "monitor-level forgetting diverged between modes");
    assert!(!batched.collector(qs_b[0]).net_table().is_empty());
}

#[test]
fn batching_introduces_no_extra_repairs_at_strong() {
    // Provider retractions legitimately propagate as view updates even at
    // Strong; what batching must never add is *optimism* repairs. Equal
    // output-retraction counts against the per-message run prove the
    // batched shell never hands a module a watermark that overtakes an
    // undelivered negator or contributor.
    let tape = workload(0xF00D);
    let (single, qs_s) = run_single(ConsistencySpec::strong(), &tape);
    let (batched, qs_b) = run_batched(ConsistencySpec::strong(), &tape);
    for (qs, qb) in qs_s.iter().zip(qs_b.iter()) {
        assert_eq!(
            single.collector(*qs).stats().retractions,
            batched.collector(*qb).stats().retractions,
            "batching changed repair traffic of {} at strong",
            batched.query_name(*qb),
        );
    }
}

#[test]
fn batched_ingestion_actually_amortises() {
    let tape = workload(0xCAFE);
    let (batched, qs) = run_batched(ConsistencySpec::middle(), &tape);
    let (single, qs_single) = run_single(ConsistencySpec::middle(), &tape);
    let stats = batched.stats(qs[0]);
    assert!(
        stats.mean_batch_len() > 1.5,
        "expected multi-message delivery runs, got mean {} over {} batches",
        stats.mean_batch_len(),
        stats.batches,
    );
    // Per-message ingestion still groups *downstream* cascades into runs,
    // but staged batches must amortise strictly better end to end.
    let single_stats = single.stats(qs_single[0]);
    assert!(
        stats.mean_batch_len() > single_stats.mean_batch_len(),
        "batched mean run {} should exceed per-message mean run {}",
        stats.mean_batch_len(),
        single_stats.mean_batch_len(),
    );
}

/// Parallel≡serial: the sharded multi-worker drain must be **bit-identical**
/// to single-threaded execution — not merely logically equivalent — for the
/// five operator families, at every consistency level, under every worker
/// count. Property-style: seeds × levels × thread counts, comparing the
/// exact stamped output streams, output guarantees, and plan statistics.
#[test]
fn parallel_workers_match_serial_bit_for_bit_at_all_levels() {
    let levels: [(ConsistencySpec, &str); 4] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
        // A horizon that bites: forgetting is arrival-order-sensitive, and
        // sharding preserves per-query arrival order, so even lossy Weak
        // must not diverge across thread counts.
        (ConsistencySpec::weak(dur(20)), "weak-biting"),
    ];
    for (spec, level) in levels {
        for seed in [0xA11CE_u64, 0x5EED5] {
            let tape = workload(seed);
            let (serial, qs) =
                run_batched_threads(spec, &tape, Engine::with_config(EngineConfig::threaded(1)));
            for threads in [2, 4] {
                let (par, qp) = run_batched_threads(
                    spec,
                    &tape,
                    Engine::with_config(EngineConfig::threaded(threads)),
                );
                for (a, b) in qs.iter().zip(qp.iter()) {
                    assert_eq!(
                        serial.collector(*a).stamped(),
                        par.collector(*b).stamped(),
                        "{level}/seed {seed:#x}/threads {threads}: {} diverged",
                        serial.query_name(*a),
                    );
                    assert_eq!(
                        serial.collector(*a).max_cti(),
                        par.collector(*b).max_cti(),
                        "{level}/threads {threads}: guarantee diverged"
                    );
                    assert_eq!(
                        serial.stats(*a),
                        par.stats(*b),
                        "{level}/threads {threads}: plan stats diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn all_five_operator_families_deliver_through_on_batch() {
    let tape = workload(0xBEEF);
    let (batched, qs) = run_batched(ConsistencySpec::middle(), &tape);
    for q in qs {
        for (name, stats) in batched.node_stats(q) {
            if stats.released > 0 {
                assert!(
                    stats.batches > 0,
                    "operator {name} released {} messages outside on_batch",
                    stats.released,
                );
            }
        }
    }
}
