//! Batch-vs-single-event equivalence of the execution core.
//!
//! The batch-at-a-time scheduler is a *physical* optimisation: cutting a
//! stream into batches must not change the logical (net) content of any
//! query's output at any consistency level. These tests drive the same
//! scrambled, retraction-bearing input through two engines — one fed one
//! message at a time, one fed whole per-type batches — across queries
//! covering all five operator families (stateless, aggregate, join,
//! sequence, negation), and assert the sealed outputs coincide at
//! Strong, Middle and Weak consistency.
//!
//! The **stateful batch-native paths** (group-aggregate's
//! one-refresh-per-run collapse, the join's memoised probe, the
//! recompute-and-diff sequencing modes) are pinned at three strengths,
//! matching what each is contractually allowed to change (see the
//! `cedr_runtime::operator` module docs):
//!
//! * join and the Each/Reuse sequence fast path are **bit-identical** to
//!   per-message execution (exact stamped tapes);
//! * the group-aggregate collapse is bit-identical wherever delivery runs
//!   coincide (Strong's alignment-driven releases) and net-equivalent
//!   with identical output guarantees under every batch split otherwise;
//! * for a *fixed* split, every path is bit-identical across worker
//!   counts {1, 2, 4} at all levels including biting-horizon Weak.

use cedr::core::prelude::*;
use cedr::streams::{scramble, Collector, DisorderConfig, MessageBatch};
use cedr::temporal::time::{dur, t};

/// Register the same three plans (five operator families) on an engine.
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    for ty in ["A_T", "B_T", "C_T"] {
        engine.register_event_type(ty, vec![("val", FieldType::Int)]);
    }
    let sel_agg = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("A_T")
        .join(
            PlanBuilder::source("B_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    let seq_unless = PlanBuilder::sequence(
        vec![PlanBuilder::source("A_T"), PlanBuilder::source("B_T")],
        dur(40),
        Pred::True,
    )
    .unless(PlanBuilder::source("C_T"), dur(20), Pred::True)
    .into_plan();
    vec![
        engine.register_plan("sel_agg", sel_agg, spec).unwrap(),
        engine.register_plan("join", join, spec).unwrap(),
        engine
            .register_plan("seq_unless", seq_unless, spec)
            .unwrap(),
    ]
}

/// A deterministic out-of-order workload: per-type scrambled streams with
/// retractions, interleaved round-robin into one `(type, message)` tape.
fn workload(seed: u64) -> Vec<(&'static str, Message)> {
    let mut streams = Vec::new();
    for (ti, ty) in ["A_T", "B_T", "C_T"].iter().enumerate() {
        let mut b = StreamBuilder::with_id_base(10_000 * ti as u64);
        for i in 0..40u64 {
            // Deterministic but irregular placements per type.
            let vs = (i * 7 + ti as u64 * 3) % 200;
            let len = 5 + (i * 11 + ti as u64) % 30;
            let e = b.insert(
                Interval::new(t(vs), t(vs + len)),
                Payload::from_values(vec![Value::Int((i % 3) as i64)]),
            );
            if i % 4 == ti as u64 % 4 {
                // Retract a quarter of them, some fully.
                let keep = if i % 8 == ti as u64 % 8 { 0 } else { len / 2 };
                b.retract(e.clone(), e.vs() + dur(keep));
            }
        }
        let ordered = b.build_ordered(Some(dur(10)), true);
        let scrambled = scramble(&ordered, &DisorderConfig::heavy(seed ^ ti as u64, 35, 5));
        streams.push((*ty, scrambled));
    }
    // Round-robin interleave, preserving each type's (disordered) order.
    let mut tape = Vec::new();
    let mut idx = [0usize; 3];
    loop {
        let mut progressed = false;
        for (s, (ty, msgs)) in streams.iter().enumerate() {
            if idx[s] < msgs.len() {
                tape.push((*ty, msgs[idx[s]].clone()));
                idx[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            return tape;
        }
    }
}

/// Drive the tape one message at a time (deliberately through the
/// deprecated string-keyed shim, so the equivalence suite keeps pinning
/// the shim path against the sessioned one).
#[allow(deprecated)]
fn run_single(spec: ConsistencySpec, tape: &[(&'static str, Message)]) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, spec);
    for (ty, m) in tape {
        engine.push(ty, m.clone()).unwrap();
    }
    engine.seal();
    (engine, qs)
}

/// Drive the tape as one staged batch per event type, drained in one go.
fn run_batched(spec: ConsistencySpec, tape: &[(&'static str, Message)]) -> (Engine, Vec<QueryId>) {
    run_batched_threads(spec, tape, Engine::new())
}

/// Same staging, explicit engine (worker-thread configurations).
fn run_batched_threads(
    spec: ConsistencySpec,
    tape: &[(&'static str, Message)],
    mut engine: Engine,
) -> (Engine, Vec<QueryId>) {
    let qs = register_queries(&mut engine, spec);
    for ty in ["A_T", "B_T", "C_T"] {
        let batch: MessageBatch = tape
            .iter()
            .filter(|(t, _)| *t == ty)
            .map(|(_, m)| m.clone())
            .collect();
        engine.enqueue_batch(ty, &batch).unwrap();
    }
    engine.run_to_quiescence();
    engine.seal();
    (engine, qs)
}

fn assert_equivalent(spec: ConsistencySpec, level: &str) {
    let tape = workload(0xBA7C4);
    let (single, qs_s) = run_single(spec, &tape);
    let (batched, qs_b) = run_batched(spec, &tape);
    for (qs, qb) in qs_s.iter().zip(qs_b.iter()) {
        let net_s = single.collector(*qs).net_table();
        let net_b = batched.collector(*qb).net_table();
        assert!(
            net_s.star_equal(&net_b),
            "{level}/{}: single {:?} != batched {:?}",
            single.query_name(*qs),
            net_s,
            net_b,
        );
        assert_eq!(
            single.collector(*qs).max_cti(),
            batched.collector(*qb).max_cti(),
            "{level}/{}: output guarantee diverged",
            single.query_name(*qs),
        );
    }
}

#[test]
fn batched_ingestion_matches_single_at_strong() {
    assert_equivalent(ConsistencySpec::strong(), "strong");
}

#[test]
fn batched_ingestion_matches_single_at_middle() {
    assert_equivalent(ConsistencySpec::middle(), "middle");
}

#[test]
fn batched_ingestion_matches_single_at_weak() {
    // A memory bound comfortably above the workload's span: weak behaves
    // like middle here, so equivalence is exact. (With a *biting* horizon,
    // weak is deliberately lossy and batch boundaries may legitimately
    // change which repairs are forgotten.)
    assert_equivalent(ConsistencySpec::weak(dur(100_000)), "weak");
}

#[test]
fn weak_with_biting_horizon_forgets_identically_at_the_monitor() {
    // Under a horizon that actually bites, *module*-level purge cadence
    // legitimately differs between batch boundaries and per-message
    // delivery (weak is lossy by contract). But the consistency monitor
    // admits messages one at a time in both modes, so with identical
    // per-stream admission order the monitor must forget exactly the same
    // messages. The single-source query isolates that order.
    let spec = ConsistencySpec::weak(dur(20));
    let tape = workload(0xD00F);
    let (single, qs_s) = run_single(spec, &tape);
    let (batched, qs_b) = run_batched(spec, &tape);
    let (fs, fb) = (
        single.stats(qs_s[0]).forgotten,
        batched.stats(qs_b[0]).forgotten,
    );
    assert!(fs > 0, "horizon must bite for this test to mean anything");
    assert_eq!(fs, fb, "monitor-level forgetting diverged between modes");
    assert!(!batched.collector(qs_b[0]).net_table().is_empty());
}

#[test]
fn batching_introduces_no_extra_repairs_at_strong() {
    // Provider retractions legitimately propagate as view updates even at
    // Strong; what batching must never add is *optimism* repairs. Equal
    // output-retraction counts against the per-message run prove the
    // batched shell never hands a module a watermark that overtakes an
    // undelivered negator or contributor.
    let tape = workload(0xF00D);
    let (single, qs_s) = run_single(ConsistencySpec::strong(), &tape);
    let (batched, qs_b) = run_batched(ConsistencySpec::strong(), &tape);
    for (qs, qb) in qs_s.iter().zip(qs_b.iter()) {
        assert_eq!(
            single.collector(*qs).stats().retractions,
            batched.collector(*qb).stats().retractions,
            "batching changed repair traffic of {} at strong",
            batched.query_name(*qb),
        );
    }
}

#[test]
fn batched_ingestion_actually_amortises() {
    let tape = workload(0xCAFE);
    let (batched, qs) = run_batched(ConsistencySpec::middle(), &tape);
    let (single, qs_single) = run_single(ConsistencySpec::middle(), &tape);
    let stats = batched.stats(qs[0]);
    assert!(
        stats.mean_batch_len() > 1.5,
        "expected multi-message delivery runs, got mean {} over {} batches",
        stats.mean_batch_len(),
        stats.batches,
    );
    // Per-message ingestion still groups *downstream* cascades into runs,
    // but staged batches must amortise strictly better end to end.
    let single_stats = single.stats(qs_single[0]);
    assert!(
        stats.mean_batch_len() > single_stats.mean_batch_len(),
        "batched mean run {} should exceed per-message mean run {}",
        stats.mean_batch_len(),
        single_stats.mean_batch_len(),
    );
}

/// Parallel≡serial: the sharded multi-worker drain must be **bit-identical**
/// to single-threaded execution — not merely logically equivalent — for the
/// five operator families, at every consistency level, under every worker
/// count. Property-style: seeds × levels × thread counts, comparing the
/// exact stamped output streams, output guarantees, and plan statistics.
#[test]
fn parallel_workers_match_serial_bit_for_bit_at_all_levels() {
    let levels: [(ConsistencySpec, &str); 4] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
        // A horizon that bites: forgetting is arrival-order-sensitive, and
        // sharding preserves per-query arrival order, so even lossy Weak
        // must not diverge across thread counts.
        (ConsistencySpec::weak(dur(20)), "weak-biting"),
    ];
    for (spec, level) in levels {
        for seed in [0xA11CE_u64, 0x5EED5] {
            let tape = workload(seed);
            let (serial, qs) =
                run_batched_threads(spec, &tape, Engine::with_config(EngineConfig::threaded(1)));
            for threads in [2, 4] {
                let (par, qp) = run_batched_threads(
                    spec,
                    &tape,
                    Engine::with_config(EngineConfig::threaded(threads)),
                );
                for (a, b) in qs.iter().zip(qp.iter()) {
                    assert_eq!(
                        serial.collector(*a).stamped(),
                        par.collector(*b).stamped(),
                        "{level}/seed {seed:#x}/threads {threads}: {} diverged",
                        serial.query_name(*a),
                    );
                    assert_eq!(
                        serial.collector(*a).max_cti(),
                        par.collector(*b).max_cti(),
                        "{level}/threads {threads}: guarantee diverged"
                    );
                    assert_eq!(
                        serial.stats(*a),
                        par.stats(*b),
                        "{level}/threads {threads}: plan stats diverged"
                    );
                }
            }
        }
    }
}

/// A retraction-heavy variant of [`workload`] that hammers **two** groups:
/// 60 heavily-overlapping A_T events per run land on group keys {0, 1}, a
/// third of them retracted (half fully), so a single delivery run touches
/// the same group dozens of times — the workload the one-refresh-per-run
/// group-aggregate collapse exists for. B_T supplies join partners on the
/// same two keys and C_T supplies negators.
fn stateful_workload(seed: u64) -> Vec<(&'static str, Message)> {
    let mut streams = Vec::new();
    for (ti, ty) in ["A_T", "B_T", "C_T"].iter().enumerate() {
        let n = if ti == 0 { 60u64 } else { 30 };
        let mut b = StreamBuilder::with_id_base(50_000 * ti as u64);
        for i in 0..n {
            let vs = (i * 5 + ti as u64 * 2) % 160;
            let len = 10 + (i * 13 + ti as u64) % 40;
            let e = b.insert(
                Interval::new(t(vs), t(vs + len)),
                Payload::from_values(vec![Value::Int((i % 2) as i64)]),
            );
            if i % 3 == 0 {
                let keep = if i % 6 == 0 { 0 } else { len / 3 };
                b.retract(e.clone(), e.vs() + dur(keep));
            }
        }
        let ordered = b.build_ordered(Some(dur(25)), true);
        let scrambled = scramble(
            &ordered,
            &DisorderConfig::heavy(seed ^ (ti as u64) << 3, 30, 4),
        );
        streams.push((*ty, scrambled));
    }
    let mut tape = Vec::new();
    let mut idx = [0usize; 3];
    loop {
        let mut progressed = false;
        for (s, (ty, msgs)) in streams.iter().enumerate() {
            if idx[s] < msgs.len() {
                tape.push((*ty, msgs[idx[s]].clone()));
                idx[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            return tape;
        }
    }
}

/// Staged ingestion at an explicit chunk granularity and worker count:
/// each per-type batch is cut into `chunks` pieces and the pieces are fed
/// round-robin across types, **one quiescence drain per round** — so the
/// chunk granularity genuinely determines the delivery-run lengths the
/// modules see (a drain concatenates everything staged since the last
/// one into maximal same-port runs).
fn run_chunked(
    spec: ConsistencySpec,
    tape: &[(&'static str, Message)],
    threads: usize,
    chunks: usize,
) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(EngineConfig::threaded(threads));
    let qs = register_queries(&mut engine, spec);
    let per_type: Vec<Vec<MessageBatch>> = ["A_T", "B_T", "C_T"]
        .iter()
        .map(|ty| {
            let batch: MessageBatch = tape
                .iter()
                .filter(|(t, _)| t == ty)
                .map(|(_, m)| m.clone())
                .collect();
            batch.chunks(chunks)
        })
        .collect();
    let rounds = per_type.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rounds {
        for (ti, ty) in ["A_T", "B_T", "C_T"].iter().enumerate() {
            if let Some(chunk) = per_type[ti].get(r) {
                engine.enqueue_batch(ty, chunk).unwrap();
            }
        }
        engine.run_to_quiescence();
    }
    engine.seal();
    (engine, qs)
}

/// The stateful `on_batch` paths are a physical optimisation: per-message
/// ingestion and batch-native ingestion at every split granularity agree
/// on the net content and the output guarantee of every query, at Strong,
/// Middle and Weak, under 1, 2 and 4 workers. (Biting-horizon Weak is
/// deliberately split-sensitive — see
/// `weak_with_biting_horizon_forgets_identically_at_the_monitor` — and is
/// pinned across *workers* at fixed splits below.)
#[test]
fn stateful_batch_native_net_equivalent_across_seeds_levels_workers_splits() {
    let levels: [(ConsistencySpec, &str); 3] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
    ];
    for (spec, level) in levels {
        for seed in [0x57A7E_u64, 0xF00D5] {
            let tape = stateful_workload(seed);
            let (single, qs_s) = run_single(spec, &tape);
            for threads in [1usize, 2, 4] {
                for chunks in [1usize, 8, 64] {
                    let (batched, qs_b) = run_chunked(spec, &tape, threads, chunks);
                    for (qs, qb) in qs_s.iter().zip(qs_b.iter()) {
                        assert!(
                            single
                                .collector(*qs)
                                .net_table()
                                .star_equal(&batched.collector(*qb).net_table()),
                            "{level}/seed {seed:#x}/threads {threads}/chunks {chunks}: \
                             {} net content diverged",
                            single.query_name(*qs),
                        );
                        assert_eq!(
                            single.collector(*qs).max_cti(),
                            batched.collector(*qb).max_cti(),
                            "{level}/threads {threads}/chunks {chunks}: guarantee diverged",
                        );
                    }
                }
            }
        }
    }
}

/// Fixed split ⇒ bit-identical across worker counts, for the stateful
/// workload, at all four levels **including biting-horizon Weak** — the
/// batch-native stateful paths must not reintroduce any thread-count
/// sensitivity.
#[test]
fn stateful_heavy_parallel_workers_bit_identical_at_all_levels() {
    let levels: [(ConsistencySpec, &str); 4] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
        (ConsistencySpec::weak(dur(20)), "weak-biting"),
    ];
    for (spec, level) in levels {
        for seed in [0xBA5E_u64, 0xFACE] {
            let tape = stateful_workload(seed);
            let (serial, qs) = run_chunked(spec, &tape, 1, 8);
            for threads in [2usize, 4] {
                let (par, qp) = run_chunked(spec, &tape, threads, 8);
                for (a, b) in qs.iter().zip(qp.iter()) {
                    assert_eq!(
                        serial.collector(*a).stamped(),
                        par.collector(*b).stamped(),
                        "{level}/seed {seed:#x}/threads {threads}: {} diverged",
                        serial.query_name(*a),
                    );
                    assert_eq!(serial.stats(*a), par.stats(*b));
                }
            }
        }
    }
}

/// Forwards every delivery to the wrapped module **per message** through
/// the default `on_batch` fallback, bypassing the module's own
/// batch-native override — the semantic reference implementation.
struct PerMessage<M>(M);

impl<M: cedr::runtime::OperatorModule> cedr::runtime::OperatorModule for PerMessage<M> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn arity(&self) -> usize {
        self.0.arity()
    }
    fn on_insert(
        &mut self,
        input: usize,
        event: &cedr::temporal::Event,
        ctx: &mut cedr::runtime::OpContext,
    ) {
        self.0.on_insert(input, event, ctx)
    }
    fn on_retract(
        &mut self,
        input: usize,
        r: &cedr::streams::Retraction,
        ctx: &mut cedr::runtime::OpContext,
    ) {
        self.0.on_retract(input, r, ctx)
    }
    // Deliberately NOT overriding `on_batch`: the default dispatches per
    // message, which is exactly the reference behaviour under test.
    fn on_advance(&mut self, ctx: &mut cedr::runtime::OpContext) {
        self.0.on_advance(ctx)
    }
    fn state_size(&self) -> usize {
        self.0.state_size()
    }
    fn cti_lag(&self) -> cedr::temporal::Duration {
        self.0.cti_lag()
    }
    fn map_cti(&self, watermark: cedr::temporal::TimePoint) -> cedr::temporal::TimePoint {
        self.0.map_cti(watermark)
    }
}

/// Cut the interleaved tape into per-port delivery batches (consecutive
/// same-port messages, capped at 9) for the given type → port mapping.
fn port_batches(
    tape: &[(&'static str, Message)],
    map: &[(&'static str, usize)],
) -> Vec<(usize, Vec<Message>)> {
    let mut out: Vec<(usize, Vec<Message>)> = Vec::new();
    for (ty, m) in tape {
        let Some(&(_, port)) = map.iter().find(|(t, _)| t == ty) else {
            continue;
        };
        match out.last_mut() {
            Some((p, chunk)) if *p == port && chunk.len() < 9 => chunk.push(m.clone()),
            _ => out.push((port, vec![m.clone()])),
        }
    }
    out
}

/// Drive identical delivery batches through a module's batch-native
/// override and through the per-message fallback; return both shells'
/// full output tapes.
fn override_vs_fallback<M: cedr::runtime::OperatorModule + 'static>(
    native: M,
    fallback: M,
    spec: ConsistencySpec,
    batches: &[(usize, Vec<Message>)],
) -> (Vec<Vec<Message>>, Vec<Vec<Message>>) {
    use cedr::runtime::OperatorShell;
    let mut a = OperatorShell::new(Box::new(native), spec);
    let mut b = OperatorShell::new(Box::new(PerMessage(fallback)), spec);
    let mut oa = Vec::new();
    let mut ob = Vec::new();
    for (now, (port, chunk)) in batches.iter().enumerate() {
        oa.push(a.push_batch(*port, chunk, now as u64));
        ob.push(b.push_batch(*port, chunk, now as u64));
    }
    (oa, ob)
}

/// The join's memoised batch probe, the Each/Reuse sequence fast path and
/// negation's batch-grained index admission must be **bit-identical** to
/// the per-message fallback on the same delivery runs — batch for batch,
/// byte for byte — at every level including biting-horizon Weak.
#[test]
fn join_sequence_negation_overrides_bit_identical_to_fallback() {
    use cedr::runtime::prelude::{JoinOp, NegationOp, SequenceOp};
    let levels: [(ConsistencySpec, &str); 4] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
        (ConsistencySpec::weak(dur(20)), "weak-biting"),
    ];
    let equi = || {
        JoinOp::new(Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)))
            .with_keys(Scalar::Field(0), Scalar::Field(0))
    };
    let seq = || SequenceOp::new(2, dur(40), Pred::True);
    let neg = || NegationOp::unless(dur(20), Pred::True);
    for (spec, level) in levels {
        for seed in [0xBA7C4_u64, 0x57A7E] {
            let tape = stateful_workload(seed);
            let ab = port_batches(&tape, &[("A_T", 0), ("B_T", 1)]);
            let ac = port_batches(&tape, &[("A_T", 0), ("C_T", 1)]);
            for (name, (oa, ob)) in [
                ("join", override_vs_fallback(equi(), equi(), spec, &ab)),
                ("sequence", override_vs_fallback(seq(), seq(), spec, &ab)),
                ("unless", override_vs_fallback(neg(), neg(), spec, &ac)),
            ] {
                assert_eq!(
                    oa, ob,
                    "{level}/seed {seed:#x}: {name} batch-native override \
                     diverged from the per-message fallback"
                );
            }
        }
    }
}

/// The group-aggregate override against the per-message fallback on the
/// same delivery runs: the collapsed tape publishes strictly less repair
/// churn, but net content per run boundary — and the final table — are
/// identical at every level including biting-horizon Weak.
#[test]
fn group_aggregate_override_net_equivalent_to_fallback() {
    use cedr::runtime::prelude::GroupAggregateOp;
    let levels: [(ConsistencySpec, &str); 4] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
        (ConsistencySpec::weak(dur(20)), "weak-biting"),
    ];
    let agg = || GroupAggregateOp::new(vec![Scalar::Field(0)], AggFunc::Count);
    for (spec, level) in levels {
        for seed in [0xC0117_u64, 0xF00D5] {
            let tape = stateful_workload(seed);
            let batches = port_batches(&tape, &[("A_T", 0)]);
            let (oa, ob) = override_vs_fallback(agg(), agg(), spec, &batches);
            let collect = |outs: &[Vec<Message>]| {
                let mut c = Collector::new();
                c.push_all(outs.iter().flatten().cloned());
                c
            };
            let (ca, cb) = (collect(&oa), collect(&ob));
            assert!(
                ca.net_table().star_equal(&cb.net_table()),
                "{level}/seed {seed:#x}: collapse changed the aggregate's net content"
            );
            assert_eq!(ca.max_cti(), cb.max_cti(), "{level}: guarantee diverged");
            assert!(
                ca.stats().data_messages <= cb.stats().data_messages,
                "{level}: the collapse can only ever publish less churn"
            );
        }
    }
}

/// The retraction-heavy group workload, staged as one big batch: a single
/// delivery run touches each group dozens of times, and the collapse emits
/// **one refresh per touched group per run** — per-message execution pays
/// one refresh per state-changing message. Net content and guarantee are
/// identical; the batched tape publishes strictly less repair churn.
#[test]
fn group_aggregate_collapses_to_one_refresh_per_touched_group_per_run() {
    let tape = stateful_workload(0xC0117);
    let (single, qs_s) = run_single(ConsistencySpec::middle(), &tape);
    let (batched, qs_b) = run_batched(ConsistencySpec::middle(), &tape);
    let q_s = qs_s[0]; // sel_agg
    let q_b = qs_b[0];

    assert!(
        single
            .collector(q_s)
            .net_table()
            .star_equal(&batched.collector(q_b).net_table()),
        "collapse changed the net content"
    );
    assert_eq!(
        single.collector(q_s).max_cti(),
        batched.collector(q_b).max_cti()
    );

    let refreshes = |e: &Engine, q: QueryId| -> usize {
        e.node_stats(q).iter().map(|(_, s)| s.group_refreshes).sum()
    };
    let (rs, rb) = (refreshes(&single, q_s), refreshes(&batched, q_b));
    assert!(
        rb * 2 <= rs,
        "expected ≥2× refresh amortisation from the collapse, got {rs} per-message vs {rb} batched"
    );
    // The join query in the same batched run exercised the memoised probe.
    let probe_batches: usize = batched
        .node_stats(qs_b[1])
        .iter()
        .map(|(_, s)| s.probe_batches)
        .sum();
    assert!(
        probe_batches > 0,
        "join never took the batch-native probe path"
    );
    // Collapsed runs publish strictly fewer optimistic repairs…
    assert!(
        batched.collector(q_b).stats().retractions < single.collector(q_s).stats().retractions,
        "collapse should suppress intermediate repair churn"
    );
    // …and at Strong, where delivery runs are alignment-driven and thus
    // coincide between the two ingestion modes, the collapse reproduces
    // the per-message tape bit for bit.
    let (strong_single, qs1) = run_single(ConsistencySpec::strong(), &tape);
    let (strong_batched, qs2) = run_batched(ConsistencySpec::strong(), &tape);
    assert_eq!(
        strong_single.collector(qs1[0]).stamped(),
        strong_batched.collector(qs2[0]).stamped(),
        "strong-level group-aggregate tape must be bit-identical"
    );
}

#[test]
fn all_five_operator_families_deliver_through_on_batch() {
    let tape = workload(0xBEEF);
    let (batched, qs) = run_batched(ConsistencySpec::middle(), &tape);
    for q in qs {
        for (name, stats) in batched.node_stats(q) {
            if stats.released > 0 {
                assert!(
                    stats.batches > 0,
                    "operator {name} released {} messages outside on_batch",
                    stats.released,
                );
            }
        }
    }
}
