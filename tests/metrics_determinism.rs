//! The counter half of the observability contract, pinned.
//!
//! [`Engine::metrics`] exposes three classes of data (see the
//! Observability section of `cedr_core::engine`):
//!
//! 1. **Semantic counters** ([`MetricsSnapshot::semantic`]) are
//!    bit-identical across `CEDR_THREADS`, `CEDR_FUSE` and
//!    `CEDR_COMPILE` for the same logical workload.
//! 2. **Execution counters** (per-node operator stats, per-shard ingress,
//!    channel admission totals) are exact for a fixed configuration —
//!    here pinned identical across worker counts at a fixed fuse mode,
//!    where only the shard layout may differ.
//! 3. **Timing histograms** sit behind the [`ObsClock`] seam and are
//!    excluded: a frozen [`ManualClock`] proves no counter reads the
//!    clock.
//!
//! The Prometheus exposition of every snapshot taken here must parse
//! under the text-format grammar ([`validate_exposition`]).

use cedr::core::prelude::*;
use cedr::core::{validate_exposition, ManualClock, MetricsSnapshot, SemanticCounters};
use cedr::temporal::time::{dur, t};
use std::sync::Arc;

/// Deterministic mixed tape for the plain source: inserts, retractions
/// and mid-stream CTIs in flushable chunks.
fn tape() -> Vec<MessageBatch> {
    let mut b = StreamBuilder::with_id_base(7);
    for i in 0..48u64 {
        let vs = i * 5 % 163;
        let e = b.insert(
            Interval::new(t(vs), t(vs + 25)),
            Payload::from_values(vec![Value::Int((i % 6) as i64), Value::Int(i as i64)]),
        );
        if i % 7 == 0 {
            b.retract(e.clone(), e.vs() + dur(3));
        }
    }
    let ordered = b.build_ordered(Some(dur(30)), true);
    ordered
        .chunks(11)
        .map(|c| c.iter().cloned().collect::<MessageBatch>())
        .collect()
}

/// One full workload at a given configuration, returning the final
/// snapshot. A frozen `ManualClock` (when `freeze_clock`) stands in for
/// wall time, so any counter that accidentally read the clock would
/// diverge from the real-clock runs.
fn run(threads: usize, fuse: bool, compile: bool, freeze_clock: bool) -> MetricsSnapshot {
    let mut engine = Engine::with_config(
        EngineConfig::threaded(threads)
            .with_fuse(fuse)
            .with_compile_kernels(compile),
    );
    if freeze_clock {
        engine.set_obs_clock(Arc::new(ManualClock::new()));
    }
    engine.register_event_type("E", vec![("Grp", FieldType::Int), ("Seq", FieldType::Int)]);
    engine.register_event_type("C", vec![("V", FieldType::Int)]);
    let filter = PlanBuilder::source("E")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Gt, Scalar::lit(2i64)))
        .project(vec![Scalar::Field(1)], vec!["Seq".into()])
        .into_plan();
    let agg = PlanBuilder::source("E")
        .window(dur(40))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let chan = PlanBuilder::source("C")
        .select(Pred::True)
        .project(vec![Scalar::Field(0)], vec!["V".into()])
        .into_plan();
    engine
        .register_plan("filter", filter, ConsistencySpec::strong())
        .unwrap();
    engine
        .register_plan("agg", agg, ConsistencySpec::middle())
        .unwrap();
    engine
        .register_plan("chan", chan, ConsistencySpec::middle())
        .unwrap();

    // Plain-source half: enqueue + drain per chunk.
    for chunk in tape() {
        engine.enqueue_batch("E", &chunk).unwrap();
        engine.run_to_quiescence();
    }

    // Channel half: two producers flushed in a fixed interleave from this
    // thread, so admission totals are deterministic by construction.
    let mut p1 = engine.channel_source("C").unwrap().manual_flush();
    let mut p2 = engine.channel_source("C").unwrap().manual_flush();
    for i in 0..12u64 {
        p1.insert(i * 2, vec![Value::Int(i as i64)]).unwrap();
        p1.flush();
        p2.insert(i * 2 + 1, vec![Value::Int(-(i as i64))]).unwrap();
        p2.flush();
        engine.pump().unwrap();
    }
    drop(p1);
    drop(p2);
    engine.run_pipelined().unwrap();

    // A durability boundary contributes checkpoint counters.
    let image = engine.checkpoint_to_vec().unwrap();
    assert!(!image.is_empty());
    engine.seal();
    engine.metrics()
}

const MODES: [(bool, bool); 3] = [(true, true), (true, false), (false, false)];

/// Class 1: the semantic projection is bit-identical across every
/// supported (threads × fuse × compile) combination, clock frozen or not.
#[test]
fn semantic_counters_identical_across_threads_and_modes() {
    let baseline: SemanticCounters = run(1, true, true, false).counters.semantic();
    assert_eq!(baseline.queries.len(), 3);
    assert!(baseline.rounds_completed > 0);
    let ch = baseline.channel.as_ref().expect("channel block present");
    assert_eq!(ch.messages_admitted, 24);
    assert_eq!(baseline.checkpoints, 1);
    for threads in [1usize, 4] {
        for (fuse, compile) in MODES {
            for freeze in [false, true] {
                let got = run(threads, fuse, compile, freeze).counters.semantic();
                assert_eq!(
                    got, baseline,
                    "semantic counters diverged at threads={threads} fuse={fuse} \
                     compile={compile} frozen_clock={freeze}"
                );
            }
        }
    }
}

/// Class 2: at a fixed fuse/compile mode, the per-query counter snapshot
/// — per-node operator counters included — is identical across worker
/// counts; only the shard-local views (staging layout, checkpoint image
/// bytes, the thread gauge) may differ, and each engine's shard rows must
/// fold to its own ingress total.
#[test]
fn full_counters_identical_across_worker_counts_at_fixed_mode() {
    for (fuse, compile) in MODES {
        let one = run(1, fuse, compile, true).counters;
        let four = run(4, fuse, compile, true).counters;
        assert_eq!(
            one.queries, four.queries,
            "per-query/per-node counters diverged across threads at fuse={fuse} compile={compile}"
        );
        assert_eq!(one.channel, four.channel);
        // Checkpoint *counts* are semantic; image bytes scale with the
        // shard layout and are only pinned within a fixed thread count.
        assert_eq!(one.checkpoints.checkpoints, four.checkpoints.checkpoints);
        assert_eq!(one.checkpoints.restores, four.checkpoints.restores);
        assert_eq!(one.rounds_completed, four.rounds_completed);
        // Ingress staging is per-shard (a message stages once per shard
        // hosting a subscriber), so the totals are layout-dependent —
        // but within each engine the shard rows must fold to the total.
        assert_eq!(one.shards.len(), 1);
        assert_eq!(four.shards.len(), 4);
        for cs in [&one, &four] {
            let folded: u64 = cs.shards.iter().map(|s| s.admitted_messages).sum();
            assert_eq!(folded, cs.ingress_total.admitted_messages);
        }
    }
}

/// Class 3 exclusion, from the other side: with a frozen manual clock
/// every histogram stays empty-of-time (all samples are zero-duration),
/// while the counters above already proved they don't care. Also pins
/// that execution-mode counters *do* move with the mode — fusion and
/// kernel compilation are visible in the snapshot, not silently absent.
#[test]
fn frozen_clock_empties_timings_and_modes_are_visible() {
    let frozen = run(1, true, true, true);
    assert!(frozen.timings.round_drain.count() > 0, "rounds were timed");
    assert_eq!(
        frozen.timings.round_drain.max(),
        0,
        "frozen clock: all zero"
    );
    assert_eq!(frozen.timings.checkpoint_write.max(), 0);

    let fused = run(1, true, true, false).counters;
    let unfused = run(1, false, false, false).counters;
    let fused_stages: u64 = fused.queries.iter().map(|q| q.total.fused_stages).sum();
    let kernel_runs: u64 = fused
        .queries
        .iter()
        .map(|q| q.total.compiled_kernel_runs)
        .sum();
    assert!(fused_stages > 0, "fusion engaged and counted");
    assert!(kernel_runs > 0, "compiled kernels engaged and counted");
    assert_eq!(
        unfused
            .queries
            .iter()
            .map(|q| q.total.fused_stages)
            .sum::<u64>(),
        0
    );
}

/// Every snapshot's Prometheus rendering parses under the text-format
/// grammar, and the family/sample counts are themselves deterministic
/// across modes (labels come from query names, not execution layout).
#[test]
fn prometheus_exposition_is_valid_and_stable() {
    let mut counts = std::collections::BTreeSet::new();
    for (fuse, compile) in MODES {
        let snap = run(2, fuse, compile, false);
        let summary =
            validate_exposition(&snap.render_prometheus()).expect("exposition must parse");
        assert!(summary.families > 20, "rich snapshot exports many families");
        counts.insert(summary.families);
    }
    assert_eq!(counts.len(), 1, "family count stable across modes");
}
