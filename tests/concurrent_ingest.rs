//! Concurrent ingestion end to end: the paper's order-insensitivity,
//! pinned at the tape level.
//!
//! N producer threads feed `ChannelSource`s while the engine pumps.
//! Whatever the thread interleaving, the canonical `(round, producer)`
//! admission order makes pumped execution **bit-identical to
//! single-threaded ingestion of the same logical emissions** — same
//! stamped tape, same subscription deltas, same output guarantee — at
//! Strong and Middle, across seeds × producer counts {1, 2, 4} × worker
//! counts {1, 4}. At Weak (even under a biting horizon) the pumped run
//! equals the canonical serial batch-splitting schedule — a particular
//! "some serial schedule", which is all lossy Weak promises.
//!
//! The single-threaded reference deliberately uses the **borrowed**
//! `SourceHandle` path (no channel, no pump), so the equality pins the
//! whole concurrent subsystem against the classic staged path rather
//! than against itself.

use cedr::core::prelude::*;
use cedr::streams::{scramble, MessageBatch};
use cedr::temporal::time::{dur, t};

/// Three plans covering all five operator families (stateless, aggregate,
/// join, sequence, negation).
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    for ty in ["A_T", "B_T", "C_T"] {
        engine.register_event_type(ty, vec![("val", FieldType::Int)]);
    }
    let sel_agg = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("A_T")
        .join(
            PlanBuilder::source("B_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    let seq_unless = PlanBuilder::sequence(
        vec![PlanBuilder::source("A_T"), PlanBuilder::source("B_T")],
        dur(40),
        Pred::True,
    )
    .unless(PlanBuilder::source("C_T"), dur(20), Pred::True)
    .into_plan();
    vec![
        engine.register_plan("sel_agg", sel_agg, spec).unwrap(),
        engine.register_plan("join", join, spec).unwrap(),
        engine
            .register_plan("seq_unless", seq_unless, spec)
            .unwrap(),
    ]
}

const TYPES: [&str; 3] = ["A_T", "B_T", "C_T"];

/// One provider's logical stream: the event type it feeds and its
/// emissions (pre-minted, scrambled, retraction-bearing batches). The
/// emissions are the unit of determinism — *what* each producer flushes,
/// in *its own* order — while thread timing decides nothing.
fn producer_scripts(seed: u64, producers: usize) -> Vec<(&'static str, Vec<MessageBatch>)> {
    (0..producers)
        .map(|p| {
            let ty = TYPES[p % TYPES.len()];
            let mut b = StreamBuilder::with_id_base(1_000_000 * (p as u64 + 1));
            for i in 0..30u64 {
                let vs = (i * 7 + p as u64 * 5) % 160;
                let len = 5 + (i * 11 + p as u64) % 25;
                let e = b.insert(
                    Interval::new(t(vs), t(vs + len)),
                    Payload::from_values(vec![Value::Int((i % 3) as i64)]),
                );
                if i % 4 == p as u64 % 4 {
                    let keep = if i % 8 == p as u64 % 8 { 0 } else { len / 2 };
                    b.retract(e.clone(), e.vs() + dur(keep));
                }
            }
            let ordered = b.build_ordered(Some(dur(15)), true);
            let scrambled = scramble(&ordered, &DisorderConfig::heavy(seed ^ p as u64, 30, 5));
            let batches = scrambled
                .chunks(7)
                .map(|c| c.iter().cloned().collect::<MessageBatch>())
                .collect();
            (ty, batches)
        })
        .collect()
}

/// Single-threaded reference: the same emissions staged through borrowed
/// `SourceHandle`s — one flush per emission, producers visited in key
/// order, **one quiescence pass per round** (the pump's canonical
/// schedule, spelled out with no channel anywhere near it).
fn run_serial_reference(
    spec: ConsistencySpec,
    scripts: &[(&'static str, Vec<MessageBatch>)],
    threads: usize,
) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(EngineConfig::threaded(threads));
    let qs = register_queries(&mut engine, spec);
    let rounds = scripts.iter().map(|(_, b)| b.len()).max().unwrap_or(0);
    for r in 0..rounds {
        for (ty, batches) in scripts {
            if let Some(batch) = batches.get(r) {
                let mut h = engine.source(ty).unwrap().manual_flush();
                h.stage_batch(batch);
                h.flush();
                drop(h);
            }
        }
        engine.run_to_quiescence();
    }
    engine.seal();
    (engine, qs)
}

/// The concurrent run: one `ChannelSource` per producer, each on its own
/// thread with seed-dependent jitter, the engine pumping concurrently.
fn run_concurrent(
    spec: ConsistencySpec,
    scripts: &[(&'static str, Vec<MessageBatch>)],
    threads: usize,
    jitter_seed: u64,
) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(EngineConfig::threaded(threads));
    let qs = register_queries(&mut engine, spec);
    // Sources opened in producer order: keys 1..=N, deterministically.
    let sources: Vec<ChannelSource> = scripts
        .iter()
        .map(|(ty, _)| engine.channel_source(ty).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for (p, (src, (_, batches))) in sources.into_iter().zip(scripts.iter()).enumerate() {
            scope.spawn(move || {
                let mut src = src.manual_flush();
                for (i, batch) in batches.iter().enumerate() {
                    // Deterministic-per-config pseudo-jitter so different
                    // seeds exercise genuinely different interleavings.
                    let z = jitter_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((p as u64) << 32 | i as u64);
                    std::thread::sleep(std::time::Duration::from_micros(z % 200));
                    src.stage_batch(batch);
                    src.flush();
                }
                // Dropping `src` disconnects the producer.
            });
        }
        engine.run_pipelined().unwrap();
    });
    engine.seal();
    (engine, qs)
}

/// Bit-level comparison of two engines' query outputs: stamped tape,
/// freshly drained subscription deltas, and the output guarantee.
fn assert_bit_identical(
    label: &str,
    (a, qa): &(Engine, Vec<QueryId>),
    (b, qb): &(Engine, Vec<QueryId>),
) {
    for (qx, qy) in qa.iter().zip(qb.iter()) {
        assert_eq!(
            a.collector(*qx).stamped(),
            b.collector(*qy).stamped(),
            "{label}: stamped tape diverged on {}",
            a.query_name(*qx),
        );
        let (mut sa, mut sb) = (a.subscribe(*qx).unwrap(), b.subscribe(*qy).unwrap());
        assert_eq!(
            sa.drain_ready(a),
            sb.drain_ready(b),
            "{label}: subscription deltas diverged on {}",
            a.query_name(*qx),
        );
        assert_eq!(
            a.collector(*qx).max_cti(),
            b.collector(*qy).max_cti(),
            "{label}: output guarantee diverged"
        );
    }
}

#[test]
fn channel_source_is_send_and_clone() {
    fn assert_send_clone<T: Send + Clone>() {}
    assert_send_clone::<ChannelSource>();
    // The batches it carries cross threads with Arc-shared events.
    fn assert_send<T: Send>() {}
    assert_send::<MessageBatch>();
    assert_send::<Message>();
}

#[test]
fn multi_producer_runs_are_bit_identical_to_single_threaded_ingestion() {
    let levels: [(ConsistencySpec, &str); 2] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
    ];
    for (spec, level) in levels {
        for seed in [0xC0FFEE_u64, 0x5EED] {
            for producers in [1usize, 2, 4] {
                let scripts = producer_scripts(seed, producers);
                for threads in [1usize, 4] {
                    let serial = run_serial_reference(spec, &scripts, threads);
                    let concurrent = run_concurrent(spec, &scripts, threads, seed ^ 0xA5);
                    assert_bit_identical(
                        &format!("{level}/seed {seed:#x}/{producers} producers/{threads} workers"),
                        &serial,
                        &concurrent,
                    );
                }
            }
        }
    }
}

#[test]
fn weak_with_biting_horizon_equals_the_canonical_serial_schedule() {
    // Weak forgets by arrival order, so all it promises under concurrency
    // is equivalence to *some* serial batch-splitting schedule. The pump
    // delivers a specific one — the canonical (round, producer) order —
    // and holds it regardless of interleaving.
    let spec = ConsistencySpec::weak(dur(25));
    for producers in [2usize, 4] {
        let scripts = producer_scripts(0xBAD5EED, producers);
        for threads in [1usize, 4] {
            let serial = run_serial_reference(spec, &scripts, threads);
            let concurrent = run_concurrent(spec, &scripts, threads, 0x77);
            // The horizon must actually bite for this to mean anything.
            let forgotten: usize = serial.1.iter().map(|q| serial.0.stats(*q).forgotten).sum();
            assert!(forgotten > 0, "pick a tighter horizon");
            assert_bit_identical(
                &format!("weak-biting/{producers} producers/{threads} workers"),
                &serial,
                &concurrent,
            );
        }
    }
}

#[test]
fn typed_builders_mint_stable_ids_across_runs() {
    // With events minted *inside* the producer threads (insert builders),
    // IDs come from each producer's own key slice, so two concurrent runs
    // are bit-identical to each other — and to a run where the same
    // sources are driven from the main thread.
    let run = |concurrent: bool| {
        // The serial variant stages every producer's emissions from the
        // main thread *before* the pump runs, so it needs channel
        // headroom for all of them (3 producers × 6 emissions) — pin a
        // floor on top of the environment's depth (the CI stress leg
        // sets CEDR_CHANNEL_DEPTH=1, which would otherwise deadlock a
        // main-thread staging loop; backpressure itself is pinned by
        // `tiny_channel_depth_backpressures_without_changing_results`).
        let mut config = EngineConfig::from_env();
        config.channel_depth = config.channel_depth.max(32);
        let mut engine = Engine::with_config(config);
        let qs = register_queries(&mut engine, ConsistencySpec::middle());
        let sources: Vec<ChannelSource> = (0..3)
            .map(|p| engine.channel_source(TYPES[p]).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for (p, src) in sources.into_iter().enumerate() {
                let work = move |mut src: ChannelSource| {
                    for i in 0..40u64 {
                        let ev = src
                            .insert((i * 3 + p as u64) % 90, vec![Value::Int((i % 4) as i64)])
                            .unwrap();
                        if i % 5 == 0 {
                            src.retract(ev, t((i * 3 + p as u64) % 90));
                        }
                        if i % 8 == 7 {
                            src.flush();
                        }
                    }
                    src.seal();
                };
                if concurrent {
                    scope.spawn(move || work(src));
                } else {
                    work(src);
                }
            }
            engine.run_pipelined().unwrap();
        });
        engine.seal();
        (engine, qs)
    };
    let a = run(false);
    let b = run(true);
    let c = run(true);
    assert_bit_identical("typed/serial-vs-concurrent", &a, &b);
    assert_bit_identical("typed/concurrent-vs-concurrent", &b, &c);
}

#[test]
fn producers_feed_while_the_engine_drains() {
    // The pipelined topology the subsystem exists for: long streams, many
    // flushes, pump rounds interleaving with producer progress (not one
    // big batch at the end).
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let sources: Vec<ChannelSource> = (0..3)
        .map(|p| engine.channel_source(TYPES[p]).unwrap())
        .collect();
    let progress = std::thread::scope(|scope| {
        for (p, src) in sources.into_iter().enumerate() {
            scope.spawn(move || {
                let mut src = src.with_autoflush(32);
                for i in 0..1_000u64 {
                    src.insert((i + p as u64) % 500, vec![Value::Int(i as i64)])
                        .unwrap();
                }
            });
        }
        engine.run_pipelined().unwrap()
    });
    assert_eq!(progress.messages, 3_000);
    assert!(
        progress.rounds > 10,
        "expected many interleaved pump rounds, got {}",
        progress.rounds
    );
    assert_eq!(progress.open_producers, 0);
    assert_eq!(progress.buffered_batches, 0);
    engine.seal();
    let inserts: usize = qs
        .iter()
        .map(|q| engine.collector(*q).stats().inserts)
        .sum();
    assert!(inserts > 0, "queries saw the traffic");
}

#[test]
fn tiny_channel_depth_backpressures_without_changing_results() {
    let scripts = producer_scripts(0xFADE, 3);
    let reference = run_serial_reference(ConsistencySpec::middle(), &scripts, 1);
    // Depth 1: every producer flush blocks until the pump takes the
    // previous emission — maximum contention, same bits.
    let mut engine = Engine::with_config(EngineConfig::serial().with_channel_depth(1));
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let sources: Vec<ChannelSource> = scripts
        .iter()
        .map(|(ty, _)| engine.channel_source(ty).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for (src, (_, batches)) in sources.into_iter().zip(scripts.iter()) {
            scope.spawn(move || {
                let mut src = src.manual_flush();
                for batch in batches {
                    src.stage_batch(batch);
                    src.flush(); // blocks on the depth-1 channel
                }
            });
        }
        engine.run_pipelined().unwrap();
    });
    engine.seal();
    assert_bit_identical("depth-1 backpressure", &reference, &(engine, qs));
}

#[test]
fn ingress_stats_observe_staging_admission_and_backpressure() {
    let mut engine = Engine::with_config(EngineConfig::serial().with_ingress_capacity(8));
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let mut src = engine.channel_source("A_T").unwrap();
    for i in 0..20u64 {
        src.insert(i, vec![Value::Int(i as i64)]).unwrap();
    }
    drop(src);
    engine.run_pipelined().unwrap();
    let total = engine.ingress_stats();
    assert_eq!(total.staged_batches, 1, "one emission staged");
    assert_eq!(total.staged_messages, 20);
    assert_eq!(
        (total.admitted_batches, total.admitted_messages),
        (total.staged_batches, total.staged_messages),
        "a drained engine admitted exactly what was staged"
    );
    // Backpressure counter: overflow the bounded per-shard ingress via
    // the try path.
    let mut big = MessageBatch::new();
    for i in 0..6u64 {
        big.push(Message::insert(
            500 + i,
            Interval::point(t(i)),
            Payload::from_values(vec![Value::Int(0)]),
        ));
    }
    engine.enqueue_batch("A_T", &big).unwrap();
    let before = engine.ingress_stats().backpressure_events;
    let err = engine.try_enqueue_batch("A_T", &big).unwrap_err();
    assert!(matches!(err, EngineError::IngressFull { .. }));
    assert_eq!(
        engine.ingress_stats().backpressure_events,
        before + 1,
        "the rejection was counted"
    );
    // Per-shard view covers every shard and sums to the total.
    let shards = engine.shard_ingress_stats();
    assert_eq!(shards.len(), engine.shard_count());
    engine.run_to_quiescence();
    engine.seal();
    assert!(engine.collector(qs[0]).stats().inserts > 0);
}

// ---------------------------------------------------------------------
// SourceHandle drop-footgun regressions (the borrowed-handle sibling).
// ---------------------------------------------------------------------

#[test]
fn source_handle_into_inner_recovers_staged_without_flushing() {
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let mut h = engine.source("A_T").unwrap().manual_flush();
    h.insert(1, vec![Value::Int(1)]).unwrap();
    h.insert(2, vec![Value::Int(2)]).unwrap();
    let staged = h.into_inner();
    assert_eq!(staged.len(), 2, "the staged batch is handed back");
    engine.run_to_quiescence();
    assert_eq!(
        engine.collector(qs[0]).stats().inserts,
        0,
        "into_inner must suppress the drop-flush"
    );
}

#[test]
fn source_handle_drop_during_unwind_does_not_double_panic() {
    // A panic while a handle holds staged messages must not run the
    // scheduler from Drop (a second panic there aborts the process). The
    // staged batch is abandoned; the unwind proceeds; the engine stays
    // usable.
    let mut engine = Engine::new();
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut h = engine.source("A_T").unwrap().manual_flush();
        h.insert(7, vec![Value::Int(7)]).unwrap();
        panic!("provider failed mid-session");
    }));
    assert!(result.is_err(), "the panic must propagate, not abort");
    engine.run_to_quiescence();
    assert_eq!(
        engine.collector(qs[0]).stats().inserts,
        0,
        "the unwound session's staged batch was abandoned, not half-flushed"
    );
    // The engine survives: a fresh session works.
    engine
        .source("A_T")
        .unwrap()
        .insert(9, vec![Value::Int(9)])
        .unwrap();
    engine.run_to_quiescence();
    assert_eq!(engine.collector(qs[0]).stats().inserts, 1);
}
