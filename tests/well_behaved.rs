//! The central correctness property of the reproduction — Definition 6,
//! **well-behavedness**: "for all (combinations of) inputs to O which are
//! logically equivalent to infinity, O's outputs are also logically
//! equivalent to infinity."
//!
//! Strategy: generate a random logical input (events + provider
//! retractions), deliver it through the simulated unreliable network under
//! several seeds/delays (all deliveries are logically equivalent by
//! construction), run each physical operator at middle consistency, and
//! assert the collected net output always equals the denotational operator
//! applied to the final logical input.

use cedr::algebra::expr::{CmpOp, Pred, Scalar};
use cedr::algebra::relational::AggFunc;
use cedr::runtime::prelude::*;
use cedr::streams::{scramble, Collector, DisorderConfig, Message, StreamBuilder};
use cedr::temporal::time::{dur, t};
use cedr::temporal::{Duration, Event, EventId, Interval, Payload, Value};
use proptest::prelude::*;

/// A randomly generated logical stream: events plus optional retractions.
#[derive(Clone, Debug)]
struct LogicalStream {
    /// (vs, len, payload kind, retract_to_fraction)
    items: Vec<(u64, u64, i64, Option<u8>)>,
    id_base: u64,
}

impl LogicalStream {
    fn events(&self) -> Vec<Event> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, (vs, len, kind, _))| {
                Event::primitive(
                    EventId(self.id_base + i as u64),
                    Interval::new(t(*vs), t(vs + len)),
                    Payload::from_values(vec![Value::Int(*kind)]),
                )
            })
            .collect()
    }

    /// The final logical content after provider retractions.
    fn final_events(&self) -> Vec<Event> {
        self.events()
            .into_iter()
            .zip(self.items.iter())
            .filter_map(|(e, (_, len, _, retract))| match retract {
                None => Some(e),
                Some(frac) => {
                    let keep = *len * (*frac as u64) / 100;
                    let ne = e.shortened(e.vs() + Duration(keep));
                    if ne.interval.is_empty() {
                        None
                    } else {
                        Some(ne)
                    }
                }
            })
            .collect()
    }
}

/// Build the ordered message stream: inserts in sync order, retractions at
/// their sync position, periodic CTIs, sealed.
fn stream_of(ls: &LogicalStream) -> Vec<Message> {
    let mut b = StreamBuilder::new();
    for (e, (_, len, _, retract)) in ls.events().into_iter().zip(ls.items.iter()) {
        b.insert_event(e.clone());
        if let Some(frac) = retract {
            let keep = *len * (*frac as u64) / 100;
            b.retract(e.clone(), e.vs() + Duration(keep));
        }
    }
    b.build_ordered(Some(dur(7)), true)
}

fn arb_stream(id_base: u64, max_n: usize) -> impl Strategy<Value = LogicalStream> {
    prop::collection::vec(
        (0u64..200, 1u64..40, 0i64..4, prop::option::of(0u8..100)),
        1..max_n,
    )
    .prop_map(move |items| LogicalStream { items, id_base })
}

/// Drive a unary module over a scrambled delivery; collect net output.
fn run_unary(
    module: Box<dyn OperatorModule>,
    stream: &[Message],
    seed: u64,
    max_delay: u64,
) -> Collector {
    let mut shell = OperatorShell::new(module, ConsistencySpec::middle());
    let scrambled = scramble(
        stream,
        &DisorderConfig {
            seed,
            max_delay,
            cti_period: Some(5),
            dup_probability: 0.0,
        },
    );
    let mut c = Collector::new();
    for (i, m) in scrambled.into_iter().enumerate() {
        c.push_all(shell.push(0, m, i as u64));
    }
    c
}

/// Drive a binary module with two scrambled streams (alternating).
fn run_binary(
    module: Box<dyn OperatorModule>,
    s0: &[Message],
    s1: &[Message],
    seed: u64,
    max_delay: u64,
) -> Collector {
    let mut shell = OperatorShell::new(module, ConsistencySpec::middle());
    let cfg = |s| DisorderConfig {
        seed: s,
        max_delay,
        cti_period: Some(5),
        dup_probability: 0.0,
    };
    let a = scramble(s0, &cfg(seed));
    let b = scramble(s1, &cfg(seed ^ 0xABCD));
    let mut c = Collector::new();
    let mut tick = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        if i < a.len() {
            c.push_all(shell.push(0, a[i].clone(), tick));
            i += 1;
            tick += 1;
        }
        if j < b.len() {
            c.push_all(shell.push(1, b[j].clone(), tick));
            j += 1;
            tick += 1;
        }
    }
    c
}

fn net_matches_denotational(collector: &Collector, expected: &[Event]) -> bool {
    let got = collector.net_table();
    let want = cedr::algebra::to_table(expected);
    got.star_equal(&want)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn select_is_well_behaved(ls in arb_stream(0, 24), seed in 0u64..1000) {
        let pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(2i64));
        let c = run_unary(Box::new(SelectOp::new(pred.clone())), &stream_of(&ls), seed, 60);
        let expected = cedr::algebra::select(&ls.final_events(), &pred);
        prop_assert!(net_matches_denotational(&c, &expected));
    }

    #[test]
    fn window_is_well_behaved(ls in arb_stream(0, 24), seed in 0u64..1000) {
        let c = run_unary(Box::new(AlterLifetimeOp::window(dur(9))), &stream_of(&ls), seed, 60);
        let expected = cedr::algebra::moving_window(&ls.final_events(), dur(9));
        prop_assert!(net_matches_denotational(&c, &expected));
    }

    #[test]
    fn deletes_separation_is_well_behaved(ls in arb_stream(0, 20), seed in 0u64..1000) {
        let c = run_unary(Box::new(AlterLifetimeOp::deletes()), &stream_of(&ls), seed, 60);
        let expected = cedr::algebra::deletes(&ls.final_events());
        prop_assert!(net_matches_denotational(&c, &expected));
    }

    #[test]
    fn count_aggregate_is_well_behaved(ls in arb_stream(0, 20), seed in 0u64..1000) {
        let c = run_unary(
            Box::new(GroupAggregateOp::new(vec![Scalar::Field(0)], AggFunc::Count)),
            &stream_of(&ls),
            seed,
            60,
        );
        let expected = cedr::algebra::group_aggregate(
            &ls.final_events(),
            &[Scalar::Field(0)],
            &AggFunc::Count,
        );
        prop_assert!(net_matches_denotational(&c, &expected));
    }

    #[test]
    fn join_is_well_behaved(
        l in arb_stream(0, 14),
        r in arb_stream(100_000, 14),
        seed in 0u64..1000,
    ) {
        let theta = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let module = JoinOp::new(theta.clone()).with_keys(Scalar::Field(0), Scalar::Field(0));
        let c = run_binary(Box::new(module), &stream_of(&l), &stream_of(&r), seed, 60);
        let expected = cedr::algebra::join(&l.final_events(), &r.final_events(), &theta);
        prop_assert!(net_matches_denotational(&c, &expected));
    }

    #[test]
    fn sequence_is_well_behaved(
        l in arb_stream(0, 12),
        r in arb_stream(100_000, 12),
        seed in 0u64..1000,
    ) {
        let c = run_binary(
            Box::new(SequenceOp::new(2, dur(25), Pred::True)),
            &stream_of(&l),
            &stream_of(&r),
            seed,
            60,
        );
        // Sequencing consumes occurrences: full removals drop contributors,
        // partial shortenings do not affect Vs.
        let li = l.final_events();
        let ri = r.final_events();
        let expected = cedr::algebra::sequence(&[li, ri], dur(25), &Pred::True);
        let got = c.net_table();
        let want = cedr::algebra::to_table(&expected);
        prop_assert!(got.star_equal(&want), "got {:?} want {:?}", got, want);
    }

    #[test]
    fn unless_is_well_behaved(
        l in arb_stream(0, 12),
        r in arb_stream(100_000, 12),
        seed in 0u64..1000,
    ) {
        let c = run_binary(
            Box::new(NegationOp::unless(dur(15), Pred::True)),
            &stream_of(&l),
            &stream_of(&r),
            seed,
            60,
        );
        let expected = cedr::algebra::unless(
            &l.final_events(),
            &r.final_events(),
            dur(15),
            &Pred::True,
        );
        let got = c.net_table();
        let want = cedr::algebra::to_table(&expected);
        prop_assert!(got.star_equal(&want), "got {:?} want {:?}", got, want);
    }

    #[test]
    fn delivery_order_never_changes_net_input(ls in arb_stream(0, 24), s1 in 0u64..500, s2 in 500u64..1000) {
        // Sanity for the harness itself: two deliveries of the same logical
        // stream are logically equivalent (Definition 1).
        let stream = stream_of(&ls);
        let d1 = scramble(&stream, &DisorderConfig::heavy(s1, 80, 6));
        let d2 = scramble(&stream, &DisorderConfig::heavy(s2, 80, 6));
        let mut c1 = Collector::new();
        c1.push_all(d1);
        let mut c2 = Collector::new();
        c2.push_all(d2);
        prop_assert!(cedr::temporal::logically_equivalent(
            c1.history(),
            c2.history(),
            cedr::temporal::EquivalenceOptions::definition1(),
        ));
    }
}
