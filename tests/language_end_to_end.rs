//! End-to-end language tests: query text → engine → outputs, cross-checked
//! against the denotational algebra, plus composability coverage (Section
//! 3's claim that "all features are fully composable").

use cedr::algebra::expr::{CmpOp, Pred, Scalar};
use cedr::core::prelude::*;

fn engine3() -> Engine {
    let mut e = Engine::new();
    for ty in ["A", "B", "C"] {
        e.register_event_type(ty, vec![("k", FieldType::Str), ("v", FieldType::Int)]);
    }
    e
}

fn push_pt(e: &mut Engine, ty: &str, vs: u64, k: &str, v: i64) -> Event {
    let ev = e.event(ty, vs, vec![Value::str(k), Value::Int(v)]).unwrap();
    let mut src = e.source(ty).unwrap();
    src.insert_event(ev.clone()).unwrap();
    src.sync();
    ev
}

#[test]
fn sequence_with_where_and_output() {
    let mut e = engine3();
    let q = e
        .register_query(
            "EVENT q WHEN SEQUENCE(A a, B b, 10 seconds) \
             WHERE a.k = b.k AND a.v < b.v \
             OUTPUT a.k AS key, b.v AS later",
            ConsistencySpec::middle(),
        )
        .unwrap();
    push_pt(&mut e, "A", 1, "x", 5);
    push_pt(&mut e, "B", 4, "x", 9); // match
    push_pt(&mut e, "B", 5, "x", 2); // v not larger: no match
    push_pt(&mut e, "B", 6, "y", 9); // wrong key: no match
    e.seal();
    let net = e.collector(q).net_table();
    assert_eq!(net.len(), 1);
    assert_eq!(net.rows[0].payload.get(0), Some(&Value::str("x")));
    assert_eq!(net.rows[0].payload.get(1), Some(&Value::Int(9)));
}

#[test]
fn nested_composition_all_not_sequence() {
    // The paper's composability example: ALL(E1, NOT(E2, SEQUENCE(E3, E4,
    // w')), w) — via ATLEAST desugaring of ALL. The sequence contributors
    // are constrained to v=1 so the bad (v=-1) event cannot double as s1.
    const Q: &str = "EVENT q \
        WHEN ALL(A a, NOT(B bad, SEQUENCE(B s1, C s2, 5 seconds)), 20 seconds) \
        WHERE s1.v = 1 AND s2.v = 1 AND bad.v = -1";
    let mut e = engine3();
    let q = e.register_query(Q, ConsistencySpec::middle()).unwrap();
    // Sequence B@10 → C@12 with no bad B in between; A@5 within 20 s.
    push_pt(&mut e, "A", 5, "m", 0);
    push_pt(&mut e, "B", 10, "m", 1);
    push_pt(&mut e, "C", 12, "m", 1);
    e.seal();
    assert_eq!(e.collector(q).net_table().len(), 1);

    // Same but with a negative event between the sequence contributors.
    let mut e2 = engine3();
    let q2 = e2.register_query(Q, ConsistencySpec::middle()).unwrap();
    push_pt(&mut e2, "A", 5, "m", 0);
    push_pt(&mut e2, "B", 10, "m", 1);
    push_pt(&mut e2, "B", 11, "m", -1); // the negated event, inside (10,12)
    push_pt(&mut e2, "C", 12, "m", 1);
    e2.seal();
    assert_eq!(e2.collector(q2).net_table().len(), 0);
}

#[test]
fn cancel_when_stops_pending_detection() {
    let mut e = engine3();
    let q = e
        .register_query(
            "EVENT q WHEN CANCEL-WHEN(SEQUENCE(A a, B b, 100 seconds), C c)",
            ConsistencySpec::middle(),
        )
        .unwrap();
    // Detection pending between A@10 and B@50; C@30 cancels it.
    push_pt(&mut e, "A", 10, "m", 0);
    push_pt(&mut e, "C", 30, "m", 0);
    push_pt(&mut e, "B", 50, "m", 0);
    e.seal();
    assert_eq!(
        e.collector(q).net_table().len(),
        0,
        "cancelled mid-detection"
    );

    let mut e2 = engine3();
    let q2 = e2
        .register_query(
            "EVENT q WHEN CANCEL-WHEN(SEQUENCE(A a, B b, 100 seconds), C c)",
            ConsistencySpec::middle(),
        )
        .unwrap();
    push_pt(&mut e2, "A", 10, "m", 0);
    push_pt(&mut e2, "B", 50, "m", 0);
    push_pt(&mut e2, "C", 60, "m", 0); // after completion: harmless
    e2.seal();
    assert_eq!(e2.collector(q2).net_table().len(), 1);
}

#[test]
fn atleast_and_atmost_counts() {
    let mut e = engine3();
    let q = e
        .register_query(
            "EVENT q WHEN ATLEAST(2, A a, B b, C c, 10 seconds)",
            ConsistencySpec::middle(),
        )
        .unwrap();
    push_pt(&mut e, "A", 1, "m", 0);
    push_pt(&mut e, "B", 3, "m", 0);
    push_pt(&mut e, "C", 5, "m", 0);
    e.seal();
    // Pairs (A,B), (A,C), (B,C) — and the engine's ATLEAST is exactly the
    // denotational one.
    assert_eq!(e.collector(q).net_table().len(), 3);
}

#[test]
fn temporal_slicing_clips_results() {
    let mut e = engine3();
    let q = e
        .register_query(
            "EVENT q WHEN SEQUENCE(A a, B b, 10 seconds) @ [0, 100) # [0, 50)",
            ConsistencySpec::middle(),
        )
        .unwrap();
    // Match occurring at 40 (inside @), validity [40, 11+...)? The output's
    // validity is [b.Vs, a.Vs + w) = [40, 45); # clips to [0,50): intact.
    push_pt(&mut e, "A", 35, "m", 0);
    push_pt(&mut e, "B", 40, "m", 0);
    // Match occurring at 120: outside the occurrence slice.
    push_pt(&mut e, "A", 115, "m", 0);
    push_pt(&mut e, "B", 120, "m", 0);
    e.seal();
    let net = e.collector(q).net_table();
    assert_eq!(net.len(), 1);
    assert!(net.rows[0].interval.start == t(40));
}

#[test]
fn engine_agrees_with_denotational_algebra_on_random_inputs() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..5 {
        let mut e = engine3();
        let q = e
            .register_query(
                "EVENT q WHEN SEQUENCE(A a, B b, 15 seconds) WHERE a.k = b.k",
                ConsistencySpec::middle(),
            )
            .unwrap();
        let mut evs_a = Vec::new();
        let mut evs_b = Vec::new();
        for i in 0..30 {
            let vs = rng.gen_range(0..120u64);
            let k = format!("k{}", rng.gen_range(0..3));
            if i % 2 == 0 {
                evs_a.push(push_pt(&mut e, "A", vs, &k, 0));
            } else {
                evs_b.push(push_pt(&mut e, "B", vs, &k, 0));
            }
        }
        e.seal();
        let expected = cedr::algebra::sequence(
            &[evs_a, evs_b],
            Duration::seconds(15),
            &Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        );
        assert_eq!(
            e.collector(q).net_table().len(),
            expected.len(),
            "round {round}"
        );
    }
}

#[test]
fn helpful_errors_surface() {
    let mut e = engine3();
    // Unknown type.
    assert!(e
        .register_query(
            "EVENT q WHEN SEQUENCE(NOPE x, B y, 1 seconds)",
            ConsistencySpec::middle()
        )
        .is_err());
    // Unknown attribute.
    assert!(e
        .register_query(
            "EVENT q WHEN SEQUENCE(A x, B y, 1 seconds) WHERE x.nope = 1",
            ConsistencySpec::middle()
        )
        .is_err());
    // Syntax error.
    assert!(e
        .register_query(
            "EVENT q WHEN SEQUENCE(A x B y, 1 seconds)",
            ConsistencySpec::middle()
        )
        .is_err());
}

#[test]
fn sc_modes_through_the_language() {
    let mut e = engine3();
    let q = e
        .register_query(
            "EVENT q WHEN SEQUENCE(A a WITH SC(EACH, CONSUME), B b, 100 seconds)",
            ConsistencySpec::middle(),
        )
        .unwrap();
    push_pt(&mut e, "A", 1, "m", 0);
    push_pt(&mut e, "B", 5, "m", 0);
    push_pt(&mut e, "B", 9, "m", 0); // A was consumed by the first match
    e.seal();
    assert_eq!(e.collector(q).net_table().len(), 1);
}
