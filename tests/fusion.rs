//! Fused-vs-unfused (and compiled-vs-interpreted) collector bit-identity.
//!
//! The plan-time fusion pass (`cedr_lang::physical`) collapses maximal
//! chains of adjacent stateless operators into single `FusedStatelessOp`
//! nodes (`cedr_runtime::fused`). Fusion changes *graph shape* — interior
//! queues, stamps and monitor admissions disappear — so its contract is
//! the third, collector-level strength of the `cedr_runtime::operator`
//! module docs: the **collector output is bit-identical** — stamped tape,
//! subscription deltas and output CTI — at every ⟨M, B⟩ consistency point.
//!
//! Fused chains additionally **compile column kernels** at registration:
//! select/project trees become closures sweeping whole payload columns
//! per delivery run instead of interpreting the stage IR per message.
//! That changes *evaluation strategy*, so the same contract gains a third
//! axis: compiled, interpreted and unfused plans must all produce the
//! identical collector output.
//!
//! These tests drive identical scrambled, retraction-bearing,
//! mid-stream-CTI workloads through compiled, interpreted and unfused
//! engines (`EngineConfig::with_fuse` / `with_compile_kernels`, the
//! in-process forms of the `CEDR_FUSE=0` / `CEDR_COMPILE=0` escape
//! hatches) and compare exact tapes across seeds × {Strong, Middle, Weak,
//! biting-horizon Weak} × worker counts {1, 4}, over chains that exercise
//! every stage family — including **partial fusion**, a chain broken by a
//! stateful group-aggregate mid-pipeline that fuses on both sides of the
//! break, and **type-confused runs**, where a union below a shared fused
//! chain mixes differently-shaped payload layouts in one delivery run.

use cedr::algebra::{DeltaFn, VsFn};
use cedr::core::prelude::*;

/// A deterministic out-of-order single-stream workload: inserts with
/// varied payload keys and lifetimes, a third retracted (half of those
/// fully), periodic CTIs, then heavy scrambling.
fn tape(seed: u64) -> Vec<Message> {
    let mut b = StreamBuilder::with_id_base(7_000);
    for i in 0..48u64 {
        let vs = (i * 7 + 3) % 210;
        let len = 4 + (i * 11) % 36;
        let e = b.insert(
            Interval::new(t(vs), t(vs + len)),
            Payload::from_values(vec![Value::Int((i % 5) as i64)]),
        );
        if i % 3 == 0 {
            let keep = if i % 6 == 0 { 0 } else { len / 2 };
            b.retract(e.clone(), e.vs() + dur(keep));
        }
    }
    let ordered = b.build_ordered(Some(dur(15)), true);
    cedr::streams::scramble(&ordered, &DisorderConfig::heavy(seed, 35, 5))
}

/// Register the fusion-relevant plans. Chain depths ≥ 2 fuse; the
/// `partial` plan's stateless runs are broken by a stateful
/// group-aggregate, so it fuses on *both* sides of the break.
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    engine.register_event_type("A_T", vec![("val", FieldType::Int)]);
    // select → project → slice-valid: all-identity-interval head.
    let chain3 = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Le, Scalar::lit(3i64)))
        .project(vec![Scalar::Field(0)], vec!["v".into()])
        .slice_valid(t(10), t(190))
        .into_plan();
    // window → select → project → slice-occurrence: lifetime mapping
    // first, so the columnar prefilter and the retract-split arms run.
    let chain4 = PlanBuilder::source("A_T")
        .window(dur(30))
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(1i64)))
        .project(vec![Scalar::Field(0)], vec!["v".into()])
        .slice_occurrence(t(0), t(180))
        .into_plan();
    // Partial fusion: fused[2] → group-aggregate (stateful) → fused[2].
    let partial = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(40))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .select(Pred::cmp(Scalar::Field(1), CmpOp::Ge, Scalar::lit(1i64)))
        .slice_valid(t(0), t(200))
        .into_plan();
    // Hopping window: the non-identity `map_cti` (HopVs) composes through
    // the fused CTI cascade.
    let hopping = PlanBuilder::source("A_T")
        .alter_lifetime(VsFn::HopVs { period: 20 }, DeltaFn::Const(dur(40)))
        .project(vec![Scalar::Field(0)], vec!["v".into()])
        .into_plan();
    vec![
        engine.register_plan("chain3", chain3, spec).unwrap(),
        engine.register_plan("chain4", chain4, spec).unwrap(),
        engine.register_plan("partial", partial, spec).unwrap(),
        engine.register_plan("hopping", hopping, spec).unwrap(),
    ]
}

/// Run the tape chunked (several delivery rounds, so mid-stream CTIs
/// cascade through live boundary state) on a fused-compiled,
/// fused-interpreted or unfused engine.
fn run(
    spec: ConsistencySpec,
    tape: &[Message],
    threads: usize,
    fuse: bool,
    compile: bool,
) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(
        EngineConfig::threaded(threads)
            .with_fuse(fuse)
            .with_compile_kernels(compile),
    );
    let qs = register_queries(&mut engine, spec);
    let batch: MessageBatch = tape.iter().cloned().collect();
    for chunk in batch.chunks_of(9) {
        engine.enqueue_batch("A_T", &chunk).unwrap();
        engine.run_to_quiescence();
    }
    engine.seal();
    (engine, qs)
}

type Level = (fn() -> ConsistencySpec, &'static str);

const LEVELS: [Level; 4] = [
    (ConsistencySpec::strong, "strong"),
    (ConsistencySpec::middle, "middle"),
    (|| ConsistencySpec::weak(dur(100_000)), "weak"),
    (|| ConsistencySpec::weak(dur(20)), "weak-biting"),
];

/// The pin: across seeds × levels × worker counts, every query's stamped
/// tape, subscription delta stream and output guarantee are identical
/// between the unfused, fused-interpreted and fused-compiled graphs — and
/// each execution mode genuinely engaged (no silent fallback).
#[test]
fn fused_matches_unfused_bit_for_bit_across_seeds_levels_workers() {
    for (spec, level) in LEVELS {
        for seed in [0xA11CE_u64, 0x5EED5] {
            let tape = tape(seed);
            for threads in [1usize, 4] {
                let (unfused, qs_u) = run(spec(), &tape, threads, false, false);
                let (interp, qs_i) = run(spec(), &tape, threads, true, false);
                let (compiled, qs_c) = run(spec(), &tape, threads, true, true);
                for ((a, b), c) in qs_u.iter().zip(qs_i.iter()).zip(qs_c.iter()) {
                    let name = unfused.query_name(*a);
                    let reference = unfused.collector(*a).stamped();
                    assert_eq!(
                        reference,
                        interp.collector(*b).stamped(),
                        "{level}/seed {seed:#x}/threads {threads}: {name} interpreted tape diverged",
                    );
                    assert_eq!(
                        reference,
                        compiled.collector(*c).stamped(),
                        "{level}/seed {seed:#x}/threads {threads}: {name} compiled tape diverged",
                    );
                    assert_eq!(
                        unfused.collector(*a).max_cti(),
                        interp.collector(*b).max_cti(),
                        "{level}/seed {seed:#x}/threads {threads}: {name} guarantee diverged",
                    );
                    assert_eq!(
                        unfused.collector(*a).max_cti(),
                        compiled.collector(*c).max_cti(),
                        "{level}/seed {seed:#x}/threads {threads}: {name} compiled guarantee diverged",
                    );
                    let (mut su, mut si, mut sc) = (
                        unfused.subscribe(*a).unwrap(),
                        interp.subscribe(*b).unwrap(),
                        compiled.subscribe(*c).unwrap(),
                    );
                    let deltas = su.drain_ready(&unfused);
                    assert_eq!(
                        deltas,
                        si.drain_ready(&interp),
                        "{level}/seed {seed:#x}/threads {threads}: {name} deltas diverged",
                    );
                    assert_eq!(
                        deltas,
                        sc.drain_ready(&compiled),
                        "{level}/seed {seed:#x}/threads {threads}: {name} compiled deltas diverged",
                    );
                    // Fusion genuinely engaged (no silent fallback)…
                    assert!(
                        interp.stats(*b).fused_stages >= 2,
                        "{name}: fusion did not engage",
                    );
                    assert!(
                        compiled.stats(*c).fused_stages >= 2,
                        "{name}: fusion did not engage (compiled)",
                    );
                    // …the reference graph genuinely ran unfused…
                    assert_eq!(unfused.stats(*a).fused_stages, 0);
                    // …and the compiled fast path is live: select-bearing
                    // chains swept bitmaps, while the interpreted engine
                    // never compiled a kernel.
                    if name != "hopping" {
                        assert!(
                            compiled.stats(*c).compiled_kernel_runs > 0,
                            "{name}: compiled kernels did not engage",
                        );
                    }
                    assert_eq!(
                        interp.stats(*b).compiled_kernel_runs,
                        0,
                        "{name}: interpreted engine ran compiled kernels",
                    );
                }
            }
        }
    }
}

/// Partial fusion in detail: the `partial` plan keeps its stateful
/// group-aggregate as its own shell while both flanking stateless runs
/// collapse — 2 + 2 fused stages, and strictly fewer nodes than unfused.
#[test]
fn partial_fusion_fuses_both_sides_of_a_stateful_break() {
    let spec = ConsistencySpec::middle();
    let (fused, qs_f) = run(spec, &tape(0xA11CE), 1, true, true);
    let (unfused, qs_u) = run(spec, &tape(0xA11CE), 1, false, false);
    let q = qs_f[2]; // partial
    assert_eq!(fused.stats(q).fused_stages, 4, "2 + 2 flanking stages");
    let fused_nodes = fused.node_stats(q).len();
    let unfused_nodes = unfused.node_stats(qs_u[2]).len();
    assert!(
        fused_nodes < unfused_nodes,
        "fusion should shrink the graph: {fused_nodes} vs {unfused_nodes} nodes"
    );
    let names: Vec<&str> = fused.node_stats(q).iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "fused").count(),
        2,
        "one fused node per flank, got {names:?}"
    );
    assert!(
        names.contains(&"group_aggregate"),
        "the stateful break stays its own shell: {names:?}"
    );
}

/// The explain surface renders the fusion outcome: collapsed chains with
/// their lengths and execution mode on a fused engine, an explicit
/// `unfused` marker on the escape hatch.
#[test]
fn explain_renders_fused_chains_and_the_escape_hatch() {
    let spec = ConsistencySpec::middle();
    let mut fused = Engine::with_config(
        EngineConfig::serial()
            .with_fuse(true)
            .with_compile_kernels(true),
    );
    let qs = register_queries(&mut fused, spec);
    let e3 = fused.explain(qs[0]);
    assert!(
        e3.contains("fused[3] compiled: select→project→slice"),
        "chain3 explain missing the compiled fused chain:\n{e3}"
    );
    let ep = fused.explain(qs[2]);
    assert!(
        ep.contains("fused[2]"),
        "partial explain missing its fused flanks:\n{ep}"
    );
    // The interpreted escape hatch is visible per chain.
    let mut interp = Engine::with_config(
        EngineConfig::serial()
            .with_fuse(true)
            .with_compile_kernels(false),
    );
    let qs_i = register_queries(&mut interp, spec);
    assert!(
        interp
            .explain(qs_i[0])
            .contains("fused[3] interpreted: select→project→slice"),
        "interpreted explain missing its mode marker:\n{}",
        interp.explain(qs_i[0])
    );
    let mut unfused = Engine::with_config(EngineConfig::serial().with_fuse(false));
    let qs_u = register_queries(&mut unfused, spec);
    assert!(
        unfused.explain(qs_u[0]).contains("physical: unfused"),
        "escape hatch must be visible in the explain:\n{}",
        unfused.explain(qs_u[0])
    );
    // Text-compiled queries get the same physical section.
    let mut text = Engine::with_config(EngineConfig::serial().with_fuse(true));
    for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
        text.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
    }
    let q = text
        .register_query(cedr::lang::parser::CIDR07_EXAMPLE, spec)
        .unwrap();
    assert!(
        text.explain(q).contains("physical:"),
        "text-path explain missing the physical section:\n{}",
        text.explain(q)
    );
}

/// Single-message ingestion exercises the fused `on_insert`/`on_retract`
/// paths (no run, no columnar view — compiled kernels fall back to
/// per-row evaluation) — same pin, per-message, on both execution modes.
#[test]
#[allow(deprecated)]
fn fused_per_message_path_matches_unfused() {
    for (spec, level) in LEVELS {
        let tape = tape(0x5EED5);
        let drive = |fuse: bool, compile: bool| {
            let mut engine = Engine::with_config(
                EngineConfig::serial()
                    .with_fuse(fuse)
                    .with_compile_kernels(compile),
            );
            let qs = register_queries(&mut engine, spec());
            for m in &tape {
                engine.push("A_T", m.clone()).unwrap();
            }
            engine.seal();
            (engine, qs)
        };
        let (unfused, qs_u) = drive(false, false);
        let (interp, qs_i) = drive(true, false);
        let (compiled, qs_c) = drive(true, true);
        for ((a, b), c) in qs_u.iter().zip(qs_i.iter()).zip(qs_c.iter()) {
            let reference = unfused.collector(*a).stamped();
            assert_eq!(
                reference,
                interp.collector(*b).stamped(),
                "{level}: {} per-message tape diverged",
                unfused.query_name(*a),
            );
            assert_eq!(
                reference,
                compiled.collector(*c).stamped(),
                "{level}: {} per-message compiled tape diverged",
                unfused.query_name(*a),
            );
        }
    }
}

/// Type confusion through one shared chain: two event types with
/// different payload layouts (a lone Int vs Str/Float/Int) meet in a
/// union *below* a fused select→project chain, so single delivery runs
/// mix widths and types. The payload columns must degrade to the exact
/// per-value fallback — never promote across types — and the compiled
/// sweep must reproduce `eval_payload`'s tag-ordered comparison (Str
/// outranks every Int, so all B rows pass `Field(0) ≥ 2`) and
/// out-of-width nulls (A rows project `Field(1)` as Null) bit for bit.
#[test]
fn type_confused_union_runs_share_one_fused_chain() {
    let a_tape = tape(0xA11CE);
    let b_tape = {
        let mut b = StreamBuilder::with_id_base(90_000);
        for i in 0..32u64 {
            let vs = (i * 13 + 1) % 200;
            let e = b.insert(
                Interval::new(t(vs), t(vs + 25)),
                Payload::from_values(vec![
                    Value::str(if i % 4 == 0 { "alpha" } else { "beta" }),
                    Value::Float(i as f64 * 1.5 - 8.0),
                    Value::Int(i as i64 % 7 - 3),
                ]),
            );
            if i % 5 == 0 {
                b.retract(e.clone(), e.vs() + dur(5));
            }
        }
        let ordered = b.build_ordered(Some(dur(15)), true);
        cedr::streams::scramble(&ordered, &DisorderConfig::heavy(0xB0B, 30, 4))
    };
    for (spec, level) in LEVELS {
        for threads in [1usize, 4] {
            let drive = |fuse: bool, compile: bool| {
                let mut engine = Engine::with_config(
                    EngineConfig::threaded(threads)
                        .with_fuse(fuse)
                        .with_compile_kernels(compile),
                );
                engine.register_event_type("A_T", vec![("val", FieldType::Int)]);
                engine.register_event_type(
                    "B_T",
                    vec![
                        ("name", FieldType::Str),
                        ("score", FieldType::Float),
                        ("val", FieldType::Int),
                    ],
                );
                let plan = PlanBuilder::source("A_T")
                    .union(PlanBuilder::source("B_T"))
                    .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(2i64)))
                    .project(
                        vec![Scalar::Field(0), Scalar::Field(1)],
                        vec!["k".into(), "x".into()],
                    )
                    .into_plan();
                let q = engine.register_plan("confused", plan, spec()).unwrap();
                let (ba, bb): (MessageBatch, MessageBatch) = (
                    a_tape.iter().cloned().collect(),
                    b_tape.iter().cloned().collect(),
                );
                // Interleave chunks from both providers so delivery runs
                // at the fused node mix the two layouts.
                let (ca, cb) = (ba.chunks_of(9), bb.chunks_of(7));
                for i in 0..ca.len().max(cb.len()) {
                    if let Some(chunk) = ca.get(i) {
                        engine.enqueue_batch("A_T", chunk).unwrap();
                    }
                    if let Some(chunk) = cb.get(i) {
                        engine.enqueue_batch("B_T", chunk).unwrap();
                    }
                    engine.run_to_quiescence();
                }
                engine.seal();
                (engine, q)
            };
            let (unfused, q_u) = drive(false, false);
            let (interp, q_i) = drive(true, false);
            let (compiled, q_c) = drive(true, true);
            let reference = unfused.collector(q_u).stamped();
            assert!(
                !reference.is_empty(),
                "{level}/threads {threads}: workload produced no output"
            );
            assert_eq!(
                reference,
                interp.collector(q_i).stamped(),
                "{level}/threads {threads}: interpreted tape diverged"
            );
            assert_eq!(
                reference,
                compiled.collector(q_c).stamped(),
                "{level}/threads {threads}: compiled tape diverged"
            );
            assert!(
                compiled.stats(q_c).fused_stages >= 2
                    && compiled.stats(q_c).compiled_kernel_runs > 0,
                "{level}/threads {threads}: compiled fused chain did not engage"
            );
        }
    }
}
