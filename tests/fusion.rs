//! Fused-vs-unfused collector bit-identity.
//!
//! The plan-time fusion pass (`cedr_lang::physical`) collapses maximal
//! chains of adjacent stateless operators into single `FusedStatelessOp`
//! nodes (`cedr_runtime::fused`). Fusion changes *graph shape* — interior
//! queues, stamps and monitor admissions disappear — so its contract is
//! the third, collector-level strength of the `cedr_runtime::operator`
//! module docs: the **collector output is bit-identical** — stamped tape,
//! subscription deltas and output CTI — at every ⟨M, B⟩ consistency point.
//!
//! These tests drive identical scrambled, retraction-bearing,
//! mid-stream-CTI workloads through a fused and an unfused engine
//! (`EngineConfig::with_fuse`, the `CEDR_FUSE=0` escape hatch's in-process
//! form) and compare exact tapes across seeds × {Strong, Middle, Weak,
//! biting-horizon Weak} × worker counts {1, 4}, over chains that exercise
//! every stage family — including **partial fusion**, a chain broken by a
//! stateful group-aggregate mid-pipeline that fuses on both sides of the
//! break.

use cedr::algebra::{DeltaFn, VsFn};
use cedr::core::prelude::*;

/// A deterministic out-of-order single-stream workload: inserts with
/// varied payload keys and lifetimes, a third retracted (half of those
/// fully), periodic CTIs, then heavy scrambling.
fn tape(seed: u64) -> Vec<Message> {
    let mut b = StreamBuilder::with_id_base(7_000);
    for i in 0..48u64 {
        let vs = (i * 7 + 3) % 210;
        let len = 4 + (i * 11) % 36;
        let e = b.insert(
            Interval::new(t(vs), t(vs + len)),
            Payload::from_values(vec![Value::Int((i % 5) as i64)]),
        );
        if i % 3 == 0 {
            let keep = if i % 6 == 0 { 0 } else { len / 2 };
            b.retract(e.clone(), e.vs() + dur(keep));
        }
    }
    let ordered = b.build_ordered(Some(dur(15)), true);
    cedr::streams::scramble(&ordered, &DisorderConfig::heavy(seed, 35, 5))
}

/// Register the fusion-relevant plans. Chain depths ≥ 2 fuse; the
/// `partial` plan's stateless runs are broken by a stateful
/// group-aggregate, so it fuses on *both* sides of the break.
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    engine.register_event_type("A_T", vec![("val", FieldType::Int)]);
    // select → project → slice-valid: all-identity-interval head.
    let chain3 = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Le, Scalar::lit(3i64)))
        .project(vec![Scalar::Field(0)], vec!["v".into()])
        .slice_valid(t(10), t(190))
        .into_plan();
    // window → select → project → slice-occurrence: lifetime mapping
    // first, so the columnar prefilter and the retract-split arms run.
    let chain4 = PlanBuilder::source("A_T")
        .window(dur(30))
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(1i64)))
        .project(vec![Scalar::Field(0)], vec!["v".into()])
        .slice_occurrence(t(0), t(180))
        .into_plan();
    // Partial fusion: fused[2] → group-aggregate (stateful) → fused[2].
    let partial = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(40))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .select(Pred::cmp(Scalar::Field(1), CmpOp::Ge, Scalar::lit(1i64)))
        .slice_valid(t(0), t(200))
        .into_plan();
    // Hopping window: the non-identity `map_cti` (HopVs) composes through
    // the fused CTI cascade.
    let hopping = PlanBuilder::source("A_T")
        .alter_lifetime(VsFn::HopVs { period: 20 }, DeltaFn::Const(dur(40)))
        .project(vec![Scalar::Field(0)], vec!["v".into()])
        .into_plan();
    vec![
        engine.register_plan("chain3", chain3, spec).unwrap(),
        engine.register_plan("chain4", chain4, spec).unwrap(),
        engine.register_plan("partial", partial, spec).unwrap(),
        engine.register_plan("hopping", hopping, spec).unwrap(),
    ]
}

/// Run the tape chunked (several delivery rounds, so mid-stream CTIs
/// cascade through live boundary state) on a fused or unfused engine.
fn run(
    spec: ConsistencySpec,
    tape: &[Message],
    threads: usize,
    fuse: bool,
) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(EngineConfig::threaded(threads).with_fuse(fuse));
    let qs = register_queries(&mut engine, spec);
    let batch: MessageBatch = tape.iter().cloned().collect();
    for chunk in batch.chunks_of(9) {
        engine.enqueue_batch("A_T", &chunk).unwrap();
        engine.run_to_quiescence();
    }
    engine.seal();
    (engine, qs)
}

type Level = (fn() -> ConsistencySpec, &'static str);

const LEVELS: [Level; 4] = [
    (ConsistencySpec::strong, "strong"),
    (ConsistencySpec::middle, "middle"),
    (|| ConsistencySpec::weak(dur(100_000)), "weak"),
    (|| ConsistencySpec::weak(dur(20)), "weak-biting"),
];

/// The pin: across seeds × levels × worker counts, every query's stamped
/// tape, subscription delta stream and output guarantee are identical
/// between the fused and unfused graphs — and fusion actually engaged.
#[test]
fn fused_matches_unfused_bit_for_bit_across_seeds_levels_workers() {
    for (spec, level) in LEVELS {
        for seed in [0xA11CE_u64, 0x5EED5] {
            let tape = tape(seed);
            for threads in [1usize, 4] {
                let (unfused, qs_u) = run(spec(), &tape, threads, false);
                let (fused, qs_f) = run(spec(), &tape, threads, true);
                for (a, b) in qs_u.iter().zip(qs_f.iter()) {
                    assert_eq!(
                        unfused.collector(*a).stamped(),
                        fused.collector(*b).stamped(),
                        "{level}/seed {seed:#x}/threads {threads}: {} tape diverged",
                        unfused.query_name(*a),
                    );
                    assert_eq!(
                        unfused.collector(*a).max_cti(),
                        fused.collector(*b).max_cti(),
                        "{level}/seed {seed:#x}/threads {threads}: {} guarantee diverged",
                        unfused.query_name(*a),
                    );
                    let (mut su, mut sf) =
                        (unfused.subscribe(*a).unwrap(), fused.subscribe(*b).unwrap());
                    assert_eq!(
                        su.drain_ready(&unfused),
                        sf.drain_ready(&fused),
                        "{level}/seed {seed:#x}/threads {threads}: {} deltas diverged",
                        unfused.query_name(*a),
                    );
                    // Fusion genuinely engaged (no silent fallback)…
                    assert!(
                        fused.stats(*b).fused_stages >= 2,
                        "{}: fusion did not engage",
                        fused.query_name(*b),
                    );
                    // …and the reference graph genuinely ran unfused.
                    assert_eq!(unfused.stats(*a).fused_stages, 0);
                }
            }
        }
    }
}

/// Partial fusion in detail: the `partial` plan keeps its stateful
/// group-aggregate as its own shell while both flanking stateless runs
/// collapse — 2 + 2 fused stages, and strictly fewer nodes than unfused.
#[test]
fn partial_fusion_fuses_both_sides_of_a_stateful_break() {
    let spec = ConsistencySpec::middle();
    let (fused, qs_f) = run(spec, &tape(0xA11CE), 1, true);
    let (unfused, qs_u) = run(spec, &tape(0xA11CE), 1, false);
    let q = qs_f[2]; // partial
    assert_eq!(fused.stats(q).fused_stages, 4, "2 + 2 flanking stages");
    let fused_nodes = fused.node_stats(q).len();
    let unfused_nodes = unfused.node_stats(qs_u[2]).len();
    assert!(
        fused_nodes < unfused_nodes,
        "fusion should shrink the graph: {fused_nodes} vs {unfused_nodes} nodes"
    );
    let names: Vec<&str> = fused.node_stats(q).iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "fused").count(),
        2,
        "one fused node per flank, got {names:?}"
    );
    assert!(
        names.contains(&"group_aggregate"),
        "the stateful break stays its own shell: {names:?}"
    );
}

/// The explain surface renders the fusion outcome: collapsed chains with
/// their lengths on a fused engine, an explicit `unfused` marker on the
/// escape hatch.
#[test]
fn explain_renders_fused_chains_and_the_escape_hatch() {
    let spec = ConsistencySpec::middle();
    let mut fused = Engine::with_config(EngineConfig::serial().with_fuse(true));
    let qs = register_queries(&mut fused, spec);
    let e3 = fused.explain(qs[0]);
    assert!(
        e3.contains("fused[3]: select→project→slice"),
        "chain3 explain missing the fused chain:\n{e3}"
    );
    let ep = fused.explain(qs[2]);
    assert!(
        ep.contains("fused[2]"),
        "partial explain missing its fused flanks:\n{ep}"
    );
    let mut unfused = Engine::with_config(EngineConfig::serial().with_fuse(false));
    let qs_u = register_queries(&mut unfused, spec);
    assert!(
        unfused.explain(qs_u[0]).contains("physical: unfused"),
        "escape hatch must be visible in the explain:\n{}",
        unfused.explain(qs_u[0])
    );
    // Text-compiled queries get the same physical section.
    let mut text = Engine::with_config(EngineConfig::serial().with_fuse(true));
    for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
        text.register_event_type(ty, vec![("Machine_Id", FieldType::Str)]);
    }
    let q = text
        .register_query(cedr::lang::parser::CIDR07_EXAMPLE, spec)
        .unwrap();
    assert!(
        text.explain(q).contains("physical:"),
        "text-path explain missing the physical section:\n{}",
        text.explain(q)
    );
}

/// Single-message ingestion exercises the fused `on_insert`/`on_retract`
/// paths (no run, no columnar view) — same pin, per-message.
#[test]
#[allow(deprecated)]
fn fused_per_message_path_matches_unfused() {
    for (spec, level) in LEVELS {
        let tape = tape(0x5EED5);
        let drive = |fuse: bool| {
            let mut engine = Engine::with_config(EngineConfig::serial().with_fuse(fuse));
            let qs = register_queries(&mut engine, spec());
            for m in &tape {
                engine.push("A_T", m.clone()).unwrap();
            }
            engine.seal();
            (engine, qs)
        };
        let (unfused, qs_u) = drive(false);
        let (fused, qs_f) = drive(true);
        for (a, b) in qs_u.iter().zip(qs_f.iter()) {
            assert_eq!(
                unfused.collector(*a).stamped(),
                fused.collector(*b).stamped(),
                "{level}: {} per-message tape diverged",
                unfused.query_name(*a),
            );
        }
    }
}
