//! Durable recovery end to end: the checkpoint/restore subsystem, pinned
//! at the bit level.
//!
//! A run is killed at an arbitrary quiescent round boundary, its image
//! restored into a fresh identically-registered engine, and the remaining
//! emissions replayed. The recovered tape — stamped output, subscription
//! deltas, output CTI — must be **bit-identical to the unfailed run**,
//! across seeds × Strong/Middle/Weak × worker counts {1, 4} × checkpoint
//! positions, with all five operator families (and their fused + compiled
//! stateless chains) live at the boundary. Recovery that changes even one
//! bit is observable; recovery that changes none is provably invisible.
//!
//! Alongside the headline equality the suite pins the image contract:
//! `checkpoint → restore → checkpoint` is byte-equal, checkpointing never
//! disturbs the running engine, corrupt/truncated/version-mismatched
//! images fail with a typed error naming the offending section and leave
//! the engine untouched, `seal` after restore equals `seal` on an engine
//! that never checkpointed, and channel producers reattach to their
//! resequencer lanes with buffered skew intact.

use cedr::core::prelude::*;
use cedr::streams::{scramble, MessageBatch};
use cedr::temporal::time::{dur, t};

/// Four plans covering all five operator families — plus a pure stateless
/// chain (`sel_win`) that fuses (and compiles, when `CEDR_COMPILE` allows)
/// straight into the sink, so the image carries live fused-boundary state.
fn register_queries(engine: &mut Engine, spec: ConsistencySpec) -> Vec<QueryId> {
    for ty in ["A_T", "B_T", "C_T"] {
        engine.register_event_type(ty, vec![("val", FieldType::Int)]);
    }
    let sel_win = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(1i64)))
        .window(dur(30))
        .into_plan();
    let sel_agg = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("A_T")
        .join(
            PlanBuilder::source("B_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    let seq_unless = PlanBuilder::sequence(
        vec![PlanBuilder::source("A_T"), PlanBuilder::source("B_T")],
        dur(40),
        Pred::True,
    )
    .unless(PlanBuilder::source("C_T"), dur(20), Pred::True)
    .into_plan();
    vec![
        engine.register_plan("sel_win", sel_win, spec).unwrap(),
        engine.register_plan("sel_agg", sel_agg, spec).unwrap(),
        engine.register_plan("join", join, spec).unwrap(),
        engine
            .register_plan("seq_unless", seq_unless, spec)
            .unwrap(),
    ]
}

const TYPES: [&str; 3] = ["A_T", "B_T", "C_T"];

/// Per-producer emission scripts: pre-minted, scrambled, retraction-bearing
/// batches (same shape as `tests/concurrent_ingest.rs`). Pre-minted IDs are
/// what lets a replay after restore re-present the identical events.
fn producer_scripts(seed: u64, producers: usize) -> Vec<(&'static str, Vec<MessageBatch>)> {
    (0..producers)
        .map(|p| {
            let ty = TYPES[p % TYPES.len()];
            let mut b = StreamBuilder::with_id_base(1_000_000 * (p as u64 + 1));
            for i in 0..30u64 {
                let vs = (i * 7 + p as u64 * 5) % 160;
                let len = 5 + (i * 11 + p as u64) % 25;
                let e = b.insert(
                    Interval::new(t(vs), t(vs + len)),
                    Payload::from_values(vec![Value::Int((i % 3) as i64)]),
                );
                if i % 4 == p as u64 % 4 {
                    let keep = if i % 8 == p as u64 % 8 { 0 } else { len / 2 };
                    b.retract(e.clone(), e.vs() + dur(keep));
                }
            }
            let ordered = b.build_ordered(Some(dur(15)), true);
            let scrambled = scramble(&ordered, &DisorderConfig::heavy(seed ^ p as u64, 30, 5));
            let batches = scrambled
                .chunks(7)
                .map(|c| c.iter().cloned().collect::<MessageBatch>())
                .collect();
            (ty, batches)
        })
        .collect()
}

fn total_rounds(scripts: &[(&'static str, Vec<MessageBatch>)]) -> usize {
    scripts.iter().map(|(_, b)| b.len()).max().unwrap_or(0)
}

fn fresh_engine(spec: ConsistencySpec, threads: usize) -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(EngineConfig::threaded(threads));
    let qs = register_queries(&mut engine, spec);
    (engine, qs)
}

/// Stage round `r` of every script through borrowed `SourceHandle`s and
/// run one quiescence pass — the canonical serial schedule.
fn stage_round(engine: &mut Engine, scripts: &[(&'static str, Vec<MessageBatch>)], r: usize) {
    for (ty, batches) in scripts {
        if let Some(batch) = batches.get(r) {
            let mut h = engine.source(ty).unwrap().manual_flush();
            h.stage_batch(batch);
            h.flush();
            drop(h);
        }
    }
    engine.run_to_quiescence();
}

/// The unfailed reference: every round, then seal.
fn run_straight(
    spec: ConsistencySpec,
    scripts: &[(&'static str, Vec<MessageBatch>)],
    threads: usize,
) -> (Engine, Vec<QueryId>) {
    let (mut engine, qs) = fresh_engine(spec, threads);
    for r in 0..total_rounds(scripts) {
        stage_round(&mut engine, scripts, r);
    }
    engine.seal();
    (engine, qs)
}

/// The failed-and-recovered run: `kill_at` rounds, checkpoint, drop the
/// engine (the crash), restore into a fresh identically-registered one,
/// replay the remaining rounds, seal.
fn run_recovered(
    spec: ConsistencySpec,
    scripts: &[(&'static str, Vec<MessageBatch>)],
    threads: usize,
    kill_at: usize,
) -> (Engine, Vec<QueryId>) {
    let image = {
        let (mut engine, _) = fresh_engine(spec, threads);
        for r in 0..kill_at {
            stage_round(&mut engine, scripts, r);
        }
        engine.checkpoint_to_vec().unwrap()
        // `engine` dropped here: the crash.
    };
    let (mut engine, qs) = fresh_engine(spec, threads);
    engine.restore_from_slice(&image).unwrap();
    assert_eq!(
        engine.rounds_completed(),
        kill_at as u64,
        "the image's round counter survives the restore"
    );
    for r in kill_at..total_rounds(scripts) {
        stage_round(&mut engine, scripts, r);
    }
    engine.seal();
    (engine, qs)
}

/// Bit-level comparison: stamped tape, freshly drained subscription
/// deltas, and the output guarantee.
fn assert_bit_identical(
    label: &str,
    (a, qa): &(Engine, Vec<QueryId>),
    (b, qb): &(Engine, Vec<QueryId>),
) {
    for (qx, qy) in qa.iter().zip(qb.iter()) {
        assert_eq!(
            a.collector(*qx).stamped(),
            b.collector(*qy).stamped(),
            "{label}: stamped tape diverged on {}",
            a.query_name(*qx),
        );
        let (mut sa, mut sb) = (a.subscribe(*qx).unwrap(), b.subscribe(*qy).unwrap());
        assert_eq!(
            sa.drain_ready(a),
            sb.drain_ready(b),
            "{label}: subscription deltas diverged on {}",
            a.query_name(*qx),
        );
        assert_eq!(
            a.collector(*qx).max_cti(),
            b.collector(*qy).max_cti(),
            "{label}: output guarantee diverged"
        );
    }
}

// ---------------------------------------------------------------------
// The headline: recovery is invisible at the bit level.
// ---------------------------------------------------------------------

#[test]
fn recovered_runs_are_bit_identical_to_unfailed_runs() {
    let levels: [(ConsistencySpec, &str); 3] = [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(25)), "weak"),
    ];
    for (spec, level) in levels {
        for seed in [0xC0FFEE_u64, 0x5EED] {
            let scripts = producer_scripts(seed, 3);
            let total = total_rounds(scripts.as_slice());
            for threads in [1usize, 4] {
                let straight = run_straight(spec, &scripts, threads);
                for kill_at in [1, total / 2, total - 1] {
                    let recovered = run_recovered(spec, &scripts, threads, kill_at);
                    assert_bit_identical(
                        &format!(
                            "{level}/seed {seed:#x}/{threads} workers/killed after round {kill_at}"
                        ),
                        &straight,
                        &recovered,
                    );
                }
            }
        }
    }
}

#[test]
fn stateful_operators_hold_live_state_at_the_checkpoint_boundary() {
    // The matrix above is only meaningful if the images actually carry
    // operator state: kill mid-run and check the engine had produced
    // output before the boundary *and* produces more after it, for every
    // query — so the boundary genuinely bisects live state.
    let scripts = producer_scripts(0xC0FFEE, 3);
    let total = total_rounds(&scripts);
    let (mut engine, qs) = fresh_engine(ConsistencySpec::middle(), 1);
    for r in 0..total / 2 {
        stage_round(&mut engine, &scripts, r);
    }
    let at_boundary: Vec<usize> = qs
        .iter()
        .map(|q| engine.collector(*q).stamped().len())
        .collect();
    let image = engine.checkpoint_to_vec().unwrap();
    drop(engine);
    let (mut engine, qs) = fresh_engine(ConsistencySpec::middle(), 1);
    engine.restore_from_slice(&image).unwrap();
    for r in total / 2..total {
        stage_round(&mut engine, &scripts, r);
    }
    engine.seal();
    for (q, before) in qs.iter().zip(at_boundary) {
        assert!(
            before > 0,
            "{}: no output before the checkpoint — boundary too early to bite",
            engine.query_name(*q)
        );
        assert!(
            engine.collector(*q).stamped().len() > before,
            "{}: no output after the restore — replay never exercised the state",
            engine.query_name(*q)
        );
    }
}

// ---------------------------------------------------------------------
// The image contract.
// ---------------------------------------------------------------------

#[test]
fn checkpoint_restore_checkpoint_is_byte_equal() {
    let scripts = producer_scripts(0xF00D, 3);
    for kill_at in [2usize, 5] {
        let (mut a, _) = fresh_engine(ConsistencySpec::middle(), 1);
        for r in 0..kill_at {
            stage_round(&mut a, &scripts, r);
        }
        let first = a.checkpoint_to_vec().unwrap();
        // Checkpointing is non-destructive: a second image of the same
        // engine is byte-equal...
        assert_eq!(first, a.checkpoint_to_vec().unwrap());
        // ...and so is the image of the engine restored from it.
        let (mut b, _) = fresh_engine(ConsistencySpec::middle(), 1);
        b.restore_from_slice(&first).unwrap();
        assert_eq!(
            first,
            b.checkpoint_to_vec().unwrap(),
            "checkpoint → restore → checkpoint must be byte-equal (kill_at {kill_at})"
        );
    }
}

#[test]
fn checkpointing_does_not_disturb_the_running_engine() {
    let scripts = producer_scripts(0xD00F, 3);
    let total = total_rounds(&scripts);
    let straight = run_straight(ConsistencySpec::middle(), &scripts, 1);
    let (mut engine, qs) = fresh_engine(ConsistencySpec::middle(), 1);
    for r in 0..total {
        stage_round(&mut engine, &scripts, r);
        // Checkpoint at *every* boundary; keep running on the same engine.
        engine.checkpoint_to_vec().unwrap();
    }
    engine.seal();
    assert_bit_identical("checkpoint-every-round", &straight, &(engine, qs));
}

#[test]
fn checkpoint_requires_a_quiescent_round_boundary() {
    let (mut engine, _) = fresh_engine(ConsistencySpec::middle(), 1);
    let mut batch = MessageBatch::new();
    batch.push(Message::insert(
        1,
        Interval::point(t(5)),
        Payload::from_values(vec![Value::Int(1)]),
    ));
    engine.enqueue_batch("A_T", &batch).unwrap();
    match engine.checkpoint_to_vec() {
        Err(EngineError::NotQuiescent { detail }) => {
            assert!(
                detail.contains("staged ingress"),
                "the error says what is pending: {detail}"
            );
        }
        other => panic!("expected NotQuiescent, got {other:?}"),
    }
    // Draining makes the same engine checkpointable.
    engine.run_to_quiescence();
    engine.checkpoint_to_vec().unwrap();
}

#[test]
fn corrupt_images_fail_typed_and_leave_the_engine_untouched() {
    let scripts = producer_scripts(0xD1CE, 3);
    let total = total_rounds(&scripts);
    let straight = run_straight(ConsistencySpec::middle(), &scripts, 1);

    let (mut engine, qs) = fresh_engine(ConsistencySpec::middle(), 1);
    for r in 0..total / 2 {
        stage_round(&mut engine, &scripts, r);
    }
    let image = engine.checkpoint_to_vec().unwrap();

    let expect_corrupt =
        |engine: &mut Engine, bytes: &[u8], want_section: &str, want: &str| match engine
            .restore_from_slice(bytes)
        {
            Err(EngineError::CheckpointCorrupt { section, detail }) => {
                assert_eq!(section, want_section, "wrong section attributed: {detail}");
                assert!(
                    detail.contains(want),
                    "detail should mention '{want}': {detail}"
                );
            }
            other => panic!("expected CheckpointCorrupt({want_section}), got {other:?}"),
        };

    // Bad magic: not a checkpoint at all.
    let mut bad = image.clone();
    bad[0] ^= 0xff;
    expect_corrupt(&mut engine, &bad, "header", "magic");

    // Format-version mismatch (version is the u32 after the 8-byte magic).
    let mut bad = image.clone();
    bad[8] = 0xfe;
    expect_corrupt(&mut engine, &bad, "header", "version");

    // Any flipped body bit fails the content checksum.
    let mut bad = image.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    expect_corrupt(&mut engine, &bad, "manifest", "checksum");

    // Truncation anywhere is typed, never a panic.
    for cut in [0, 7, 20, image.len() / 2, image.len() - 1] {
        match engine.restore_from_slice(&image[..cut]) {
            Err(EngineError::CheckpointCorrupt { .. }) => {}
            other => panic!("truncation at {cut}: expected CheckpointCorrupt, got {other:?}"),
        }
    }

    // An image from a differently-registered engine is refused up front.
    let mut other = Engine::with_config(EngineConfig::threaded(1));
    other.register_event_type("A_T", vec![("val", FieldType::Int)]);
    let lone = PlanBuilder::source("A_T").select(Pred::True).into_plan();
    other
        .register_plan("lone", lone, ConsistencySpec::middle())
        .unwrap();
    expect_corrupt(&mut other, &image, "manifest", "configuration hash");

    // None of those failures touched the engine: the intact image still
    // restores into it, and finishing the run matches the unfailed one.
    engine.restore_from_slice(&image).unwrap();
    for r in total / 2..total {
        stage_round(&mut engine, &scripts, r);
    }
    engine.seal();
    assert_bit_identical("after failed restores", &straight, &(engine, qs));
}

#[test]
fn seal_after_restore_matches_seal_without_a_checkpoint() {
    let scripts = producer_scripts(0xBEEF, 3);
    let total = total_rounds(&scripts);
    let straight = run_straight(ConsistencySpec::middle(), &scripts, 1);

    // Checkpoint after the last round but *before* seal; seal only the
    // restored engine. CTI(∞) propagation must behave exactly as if the
    // checkpoint never happened.
    let (mut a, _) = fresh_engine(ConsistencySpec::middle(), 1);
    for r in 0..total {
        stage_round(&mut a, &scripts, r);
    }
    let pre_seal = a.checkpoint_to_vec().unwrap();
    drop(a);
    let (mut b, qb) = fresh_engine(ConsistencySpec::middle(), 1);
    b.restore_from_slice(&pre_seal).unwrap();
    b.seal();
    let b = (b, qb);
    assert_bit_identical("seal after restore", &straight, &b);

    // Seal state itself is part of the image: checkpoint the sealed
    // engine, restore, and the result is sealed — same bits, no second
    // seal required.
    let (mut sealed, _) = b;
    let post_seal = sealed.checkpoint_to_vec().unwrap();
    let (mut c, qc) = fresh_engine(ConsistencySpec::middle(), 1);
    c.restore_from_slice(&post_seal).unwrap();
    assert!(c.is_sealed(), "the seal survives the image");
    assert_bit_identical("restored-from-sealed", &straight, &(c, qc));
}

// ---------------------------------------------------------------------
// The concurrent subsystem: resequencer lanes and producer reattachment.
// ---------------------------------------------------------------------

/// Environment config with enough channel headroom for main-thread
/// staging (the CI stress leg sets `CEDR_CHANNEL_DEPTH=1`, which would
/// deadlock a staging loop that never yields to the pump; backpressure
/// itself is pinned by `tests/concurrent_ingest.rs`).
fn floored_env_config() -> EngineConfig {
    let mut config = EngineConfig::from_env();
    config.channel_depth = config.channel_depth.max(32);
    config
}

#[test]
fn channel_producers_reattach_with_buffered_skew_intact() {
    let scripts = producer_scripts(0xACE, 2);
    let reference = {
        let mut engine = Engine::with_config(floored_env_config());
        let qs = register_queries(&mut engine, ConsistencySpec::middle());
        for r in 0..total_rounds(&scripts) {
            stage_round(&mut engine, &scripts, r);
        }
        engine.seal();
        (engine, qs)
    };

    // Phase 1: two pumped producers with skew — producer 2 runs a full
    // emission ahead, so at the kill the resequencer holds its buffered
    // round-1 emission while producer 1's lane cursor sits at 1.
    let (image, key1, key2) = {
        let mut engine = Engine::with_config(floored_env_config());
        register_queries(&mut engine, ConsistencySpec::middle());
        let mut s1 = engine.channel_source(scripts[0].0).unwrap().manual_flush();
        let mut s2 = engine.channel_source(scripts[1].0).unwrap().manual_flush();
        let keys = (s1.producer_key(), s2.producer_key());
        s1.stage_batch(&scripts[0].1[0]);
        s1.flush();
        s2.stage_batch(&scripts[1].1[0]);
        s2.flush();
        s2.stage_batch(&scripts[1].1[1]);
        s2.flush();
        let progress = engine.pump().unwrap();
        assert_eq!(progress.rounds, 1, "round 0 admitted, round 1 blocked");
        assert_eq!(
            progress.buffered_batches, 1,
            "producer 2's lead is buffered"
        );
        // The crash happens with both producers still attached.
        let image = engine.checkpoint_to_vec().unwrap();
        (image, keys.0, keys.1)
    };

    // Phase 2: restore, reattach in the original open order (lane
    // cursors and the buffered emission come back from the image), replay
    // each producer's remaining emissions, finish pumped.
    let mut engine = Engine::with_config(floored_env_config());
    let qs = register_queries(&mut engine, ConsistencySpec::middle());
    engine.restore_from_slice(&image).unwrap();
    let mut r1 = engine.channel_source(scripts[0].0).unwrap().manual_flush();
    let mut r2 = engine.channel_source(scripts[1].0).unwrap().manual_flush();
    assert_eq!(r1.producer_key(), key1, "first reattach resumes lane 1");
    assert_eq!(r2.producer_key(), key2, "second reattach resumes lane 2");
    for batch in &scripts[0].1[1..] {
        r1.stage_batch(batch);
        r1.flush();
    }
    for batch in &scripts[1].1[2..] {
        r2.stage_batch(batch);
        r2.flush();
    }
    drop(r1);
    drop(r2);
    engine.run_pipelined().unwrap();
    engine.seal();
    assert_bit_identical("channel reattach", &reference, &(engine, qs));
}

#[test]
fn pump_progress_names_the_awaited_producer_and_counts_stalled_rounds() {
    let mut engine = Engine::with_config(floored_env_config());
    register_queries(&mut engine, ConsistencySpec::middle());
    let mut fast = engine.channel_source("A_T").unwrap().manual_flush();
    let silent = engine.channel_source("B_T").unwrap();
    let silent_key = silent.producer_key();

    fast.insert(10, vec![Value::Int(1)]).unwrap();
    fast.flush();
    let p = engine.pump().unwrap();
    assert_eq!(p.rounds, 0, "round 0 is blocked on the silent producer");
    assert_eq!(p.waiting_on, Some(silent_key), "the stall names the lane");
    assert_eq!(p.rounds_stalled, 1);
    let p = engine.pump().unwrap();
    assert_eq!(p.waiting_on, Some(silent_key));
    assert_eq!(p.rounds_stalled, 2, "consecutive blocked pumps accumulate");

    // The silent producer speaks: the stall clears and the round runs.
    let mut silent = silent.manual_flush();
    silent.insert(20, vec![Value::Int(2)]).unwrap();
    silent.flush();
    let p = engine.pump().unwrap();
    assert_eq!(p.rounds, 1);
    assert_eq!(p.waiting_on, None);
    assert_eq!(p.rounds_stalled, 0);

    drop(fast);
    drop(silent);
    engine.run_pipelined().unwrap();
    engine.seal();
}
