//! Umbrella crate for the CEDR reproduction.
//!
//! Re-exports the public API of every sub-crate so that examples and
//! integration tests can `use cedr::...` uniformly. See `cedr-core` for the
//! engine facade and `README.md` for a tour.

pub use cedr_algebra as algebra;
pub use cedr_core as core;
pub use cedr_durable as durable;
pub use cedr_lang as lang;
pub use cedr_obs as obs;
pub use cedr_runtime as runtime;
pub use cedr_streams as streams;
pub use cedr_temporal as temporal;
pub use cedr_workload as workload;

pub use cedr_core::prelude::*;
